(* The precision-tiered VSA pipeline (paper §4.2, per Balakrishnan-Reps):
   a forward abstract interpretation over the real CFG, with

   tier 1 — CFG + reverse-postorder worklist (Cfg);
   tier 2 — strided-interval value tracking for GPRs and 8-byte memory
            cells (Si / Domain), with copy provenance from registers back
            to their root cells and compare/branch refinement, so an
            indexed store  [A + i*8]  with  i ∈ 1[0,n-1]  taints exactly
            8[A, A+8(n-1)] instead of Anywhere;
   tier 3 — flow-sensitive taint with strong updates: an exact 8-byte
            integer (or provably-clean FP) store kills the FP taint of
            the bytes it overwrites;
   tier 4 — sink classification with exemptions the flow-insensitive
            pass cannot justify (clean-operand xmm bit ops, dead
            gpr<-xmm moves), feeding trap-check elision in the engine.

   Conservatism contract: if the analysis cannot *prove* an instruction
   never observes a NaN-boxed value, the instruction is patched.  The
   runtime soundness oracle (engine --oracle) checks the complement: no
   unpatched integer load may ever observe a live boxed value.

   Taint soundness argument (why integer stores never *add* taint):
   boxed values can only be written to memory by FP stores of dirty xmm
   registers — GPRs never hold boxed bits, because every integer load
   that could observe a box is itself a sink (hence patched, hence
   demoted before the load executes), Cvt_f2i results are real integers,
   and Movq_xr sinks demote their source first.  The oracle validates
   exactly this inductive invariant at runtime.

   Known gap (documented, matches the legacy pass): integer arithmetic
   performed *in place* on a tainted memory cell (Int_arith/Inc/Dec/Neg
   with a memory destination) keeps the taint — the result of arithmetic
   on a boxed pattern may still look boxed — but is not itself treated
   as a sink class. *)

module IntMap = Domain.IntMap
module IntSet = Domain.IntSet

type sink_kind = K_int_load | K_movq | K_fp_bit

type sink = { sink_index : int; kind : sink_kind; srcs : int list }

type t = {
  sinks : sink list; (* ascending by index *)
  sources : int list; (* static FP-store sites that may write boxed values *)
  total_int_loads : int;
  proven_safe_loads : int;
  trap_checks_elided : int; (* proven loads + exempted movq / fp_bit sites *)
  iterations : int; (* block transfers until fixpoint *)
  n_blocks : int;
  n_loop_heads : int;
  tainted : (int * int * int list) list; (* [lo,hi) spans w/ sources, at exit *)
  bailed_out : bool; (* iteration budget blown: everything conservative *)
}

(* ---- memory access resolution ------------------------------------------- *)

type acc = { alo : int; ahi : int (* exclusive *); aexact : int option }

let gi = Machine.Isa.gpr_index

let addr_si (st : Domain.st) (m : Machine.Isa.mem_addr) =
  let reg_si r = st.Domain.regs.(gi r).Domain.si in
  let base = match m.base with None -> Si.singleton 0 | Some r -> reg_si r in
  let index =
    match m.index with
    | None -> Si.singleton 0
    | Some r -> Si.mul (reg_si r) (Si.singleton m.scale)
  in
  Si.add (Si.add base index) (Si.singleton m.disp)

let resolve mem_size (st : Domain.st) (m : Machine.Isa.mem_addr) size : acc =
  let a = addr_si st m in
  match Si.as_singleton a with
  | Some v when v >= 0 && v + size <= mem_size -> { alo = v; ahi = v + size; aexact = Some v }
  | Some v -> { alo = max 0 (min v mem_size); ahi = max 0 (min (v + size) mem_size); aexact = None }
  | None ->
      let lo, hi =
        match Si.bounds a with
        | Some (Some l, Some h) -> (l, h + size)
        | Some (Some l, None) -> (l, mem_size)
        | Some (None, Some h) -> (0, h + size)
        | _ -> (0, mem_size)
      in
      let lo = max 0 (min lo mem_size) in
      let hi = max lo (min hi mem_size) in
      { alo = lo; ahi = hi; aexact = None }

let is_cell mem_size a = a land 7 = 0 && a >= 0 && a + 8 <= mem_size

let overlaps_cell a lo hi = a + 8 > lo && a < hi

(* drop cell bindings inside [lo,hi) and sever provenance links into it *)
let invalidate_range (st : Domain.st) lo hi : Domain.st =
  if hi <= lo then st
  else begin
    let regs =
      Array.map
        (fun (r : Domain.rv) ->
          match r.Domain.copy_of with
          | Some c when overlaps_cell c lo hi -> { r with Domain.copy_of = None }
          | _ -> r)
        st.Domain.regs
    in
    let cells =
      IntMap.filter_map
        (fun a (c : Domain.cell) ->
          if overlaps_cell a lo hi then None
          else
            match c.Domain.cell_copy_of with
            | Some rc when overlaps_cell rc lo hi -> Some { c with Domain.cell_copy_of = None }
            | _ -> Some c)
        st.Domain.cells
    in
    { st with Domain.regs; cells }
  end

let untainted (st : Domain.st) lo hi = IntSet.is_empty (Domain.taint_query st.Domain.taint ~lo ~hi)

(* ---- the transfer function ----------------------------------------------- *)

type ctx = {
  insns : Machine.Isa.insn array;
  mem_size : int;
  heap_base : int;
  cfg : Cfg.t;
  (* report-pass accumulators (only written when reporting = true) *)
  mutable reporting : bool;
  mutable srcs_acc : IntSet.t; (* static source sites seen *)
  mutable sinks_acc : sink list;
  mutable loads : int;
  mutable proven : int;
  mutable exempt_movq : int;
  mutable exempt_bit : int;
}

let set_reg (st : Domain.st) r (rv : Domain.rv) =
  let regs = Array.copy st.Domain.regs in
  regs.(r) <- rv;
  { st with Domain.regs = regs }

let set_xmm_clean (st : Domain.st) x v =
  if st.Domain.xmm_clean.(x) = v then st
  else begin
    let xc = Array.copy st.Domain.xmm_clean in
    xc.(x) <- v;
    { st with Domain.xmm_clean = xc }
  end

let load_rv (st : Domain.st) a : Domain.rv =
  match IntMap.find_opt a st.Domain.cells with
  | Some c ->
      { Domain.si = c.Domain.cv;
        copy_of = Some (match c.Domain.cell_copy_of with Some r -> r | None -> a) }
  | None -> { Domain.si = Si.top; copy_of = Some a }

(* exact 8-byte integer (or provably-clean) store: strong update *)
let store_clean_exact ctx (st : Domain.st) a (rv : Domain.rv) : Domain.st =
  let st = invalidate_range st a (a + 8) in
  let st = { st with Domain.taint = Domain.taint_kill st.Domain.taint ~lo:a ~hi:(a + 8) } in
  if is_cell ctx.mem_size a then begin
    let root = match rv.Domain.copy_of with Some rc when rc <> a -> Some rc | _ -> None in
    { st with Domain.cells = IntMap.add a { Domain.cv = rv.Domain.si; cell_copy_of = root } st.Domain.cells }
  end
  else st

(* a dirty FP store: invalidate + taint the (bounded) range *)
let store_dirty ctx idx (st : Domain.st) (a : acc) : Domain.st =
  if ctx.reporting then ctx.srcs_acc <- IntSet.add idx ctx.srcs_acc;
  let st = invalidate_range st a.alo a.ahi in
  { st with Domain.taint = Domain.taint_add st.Domain.taint ~lo:a.alo ~hi:a.ahi ~srcs:(IntSet.singleton idx) }

let rv_of_operand ctx (st : Domain.st) size (o : Machine.Isa.operand) : Domain.rv =
  match o with
  | Machine.Isa.Reg r -> st.Domain.regs.(gi r)
  | Machine.Isa.Imm v -> { Domain.si = Si.singleton (Int64.to_int v); copy_of = None }
  | Machine.Isa.Mem m ->
      let a = resolve ctx.mem_size st m size in
      if size = 8 then
        (match a.aexact with
        | Some v when is_cell ctx.mem_size v -> load_rv st v
        | _ -> Domain.top_rv)
      else if size = 4 then { Domain.si = Si.range 0 0xFFFFFFFF; copy_of = None }
      else Domain.top_rv
  | Machine.Isa.Xmm _ -> Domain.top_rv

(* does [m] mention register [r]? *)
let mem_uses (m : Machine.Isa.mem_addr) r = m.base = Some r || m.index = Some r

(* does the instruction after a Movq_xr fully overwrite [dst] without
   reading it?  (the dead-move exemption) *)
let overwrites_without_read (next : Machine.Isa.insn) (dst : Machine.Isa.gpr) =
  match next with
  | Machine.Isa.Mov { size = 8; dst = Machine.Isa.Reg r; src } when r = dst -> begin
      match src with
      | Machine.Isa.Imm _ -> true
      | Machine.Isa.Reg s -> s <> dst
      | Machine.Isa.Mem m -> not (mem_uses m dst)
      | Machine.Isa.Xmm _ -> false
    end
  | Machine.Isa.Lea { dst = r; src } when r = dst -> not (mem_uses src dst)
  | Machine.Isa.Pop (Machine.Isa.Reg r) when r = dst -> true
  | Machine.Isa.Movq_xr { dst = r; _ } when r = dst -> true
  | Machine.Isa.Cvt_f2i { dst = Machine.Isa.Reg r; _ } when r = dst -> true
  | _ -> false

let int_op_si (op : Machine.Isa.int_op) a b =
  match op with
  | Machine.Isa.ADD -> Si.add a b
  | Machine.Isa.SUB -> Si.sub a b
  | Machine.Isa.IMUL -> Si.mul a b
  | Machine.Isa.AND -> Si.logand a b
  | Machine.Isa.OR -> Si.logor a b
  | Machine.Isa.XOR -> Si.logxor a b
  | Machine.Isa.SHL -> (match Si.as_singleton b with Some k -> Si.shl a k | None -> Si.top)
  | Machine.Isa.SHR | Machine.Isa.SAR -> begin
      match (Si.as_singleton a, Si.as_singleton b) with
      | Some x, Some k when k >= 0 && k < 63 ->
          Si.singleton
            (if op = Machine.Isa.SAR then x asr k
             else if x >= 0 then x lsr k
             else Int64.to_int (Int64.shift_right_logical (Int64.of_int x) k))
      | _ -> Si.top
    end

let origin_of ctx (st : Domain.st) (o : Machine.Isa.operand) : Domain.origin =
  match o with
  | Machine.Isa.Reg r ->
      { Domain.osi = st.Domain.regs.(gi r).Domain.si;
        oreg = Some (gi r);
        ocell = st.Domain.regs.(gi r).Domain.copy_of }
  | Machine.Isa.Imm v -> { Domain.osi = Si.singleton (Int64.to_int v); oreg = None; ocell = None }
  | Machine.Isa.Mem m -> begin
      let a = resolve ctx.mem_size st m 8 in
      match a.aexact with
      | Some v when is_cell ctx.mem_size v ->
          let rv = load_rv st v in
          { Domain.osi = rv.Domain.si; oreg = None; ocell = rv.Domain.copy_of }
      | _ -> { Domain.osi = Si.top; oreg = None; ocell = None }
    end
  | Machine.Isa.Xmm _ -> { Domain.osi = Si.top; oreg = None; ocell = None }

(* FP store helper: [w8] is the store width in bytes (8 or 16); clean
   stores kill taint when exact, dirty stores taint the range. *)
let fp_store ctx idx (st : Domain.st) (m : Machine.Isa.mem_addr) ~bytes ~clean : Domain.st =
  let a = resolve ctx.mem_size st m bytes in
  if clean then begin
    let st = invalidate_range st a.alo a.ahi in
    match a.aexact with
    | Some v -> { st with Domain.taint = Domain.taint_kill st.Domain.taint ~lo:v ~hi:(v + bytes) }
    | None -> st
  end
  else store_dirty ctx idx st a

let xmm_of (o : Machine.Isa.operand) = match o with Machine.Isa.Xmm i -> Some i | _ -> None

(* Transfer one instruction.  [idx] is its index; returns the post
   state.  The compare-fact slot is cleared unless the instruction is a
   Cmp (which sets it) or a Jcc (which reads it downstream). *)
let transfer ctx idx (st0 : Domain.st) (insn : Machine.Isa.insn) : Domain.st =
  let st =
    match insn with
    | Machine.Isa.Cmp _ | Machine.Isa.Jcc _ -> st0
    | _ -> if st0.Domain.cmp = None then st0 else { st0 with Domain.cmp = None }
  in
  let mem_size = ctx.mem_size in
  match insn with
  (* ---- integer data movement ---- *)
  | Machine.Isa.Mov { size; dst; src } -> begin
      let rv = rv_of_operand ctx st size src in
      match dst with
      | Machine.Isa.Reg r ->
          if size = 8 then set_reg st (gi r) rv
          else if size = 4 then
            (* 32-bit writes zero-extend *)
            let si =
              match Si.bounds rv.Domain.si with
              | Some (Some l, Some h) when l >= 0 && h < 0x100000000 -> rv.Domain.si
              | _ -> Si.range 0 0xFFFFFFFF
            in
            set_reg st (gi r) { Domain.si; copy_of = None }
          else set_reg st (gi r) Domain.top_rv
      | Machine.Isa.Mem m -> begin
          let a = resolve mem_size st m size in
          match a.aexact with
          | Some v when size = 8 ->
              (* full 8-byte overwrite: strong update, kills taint *)
              let st = store_clean_exact ctx st v rv in
              (* the source register now mirrors the cell *)
              (match src with
              | Machine.Isa.Reg sr when rv.Domain.copy_of = None && is_cell mem_size v ->
                  set_reg st (gi sr) { rv with Domain.copy_of = Some v }
              | _ -> st)
          | _ ->
              (* partial or imprecise: no strong update (a 4-byte store
                 cannot un-box the containing word) *)
              invalidate_range st a.alo a.ahi
        end
      | _ -> st
    end
  | Machine.Isa.Lea { dst; src } ->
      set_reg st (gi dst) { Domain.si = addr_si st src; copy_of = None }
  | Machine.Isa.Int_arith { op; dst; src } -> begin
      let b = (rv_of_operand ctx st 8 src).Domain.si in
      match dst with
      | Machine.Isa.Reg r ->
          let res =
            match (op, src) with
            | Machine.Isa.XOR, Machine.Isa.Reg s when s = r -> Si.singleton 0
            | _ -> int_op_si op st.Domain.regs.(gi r).Domain.si b
          in
          set_reg st (gi r) { Domain.si = res; copy_of = None }
      | Machine.Isa.Mem m ->
          (* read-modify-write on memory: value changes (drop binding)
             but taint survives — arithmetic on a boxed pattern may
             still look boxed (documented gap) *)
          let a = resolve mem_size st m 8 in
          invalidate_range st a.alo a.ahi
      | _ -> st
    end
  | Machine.Isa.Cmp { a; b } ->
      { st with Domain.cmp = Some { Domain.ca = origin_of ctx st a; cb = origin_of ctx st b } }
  | Machine.Isa.Test _ -> st
  | Machine.Isa.Inc o | Machine.Isa.Dec o | Machine.Isa.Neg o -> begin
      let delta v =
        match insn with
        | Machine.Isa.Inc _ -> Si.add v (Si.singleton 1)
        | Machine.Isa.Dec _ -> Si.sub v (Si.singleton 1)
        | _ -> Si.neg v
      in
      match o with
      | Machine.Isa.Reg r ->
          set_reg st (gi r) { Domain.si = delta st.Domain.regs.(gi r).Domain.si; copy_of = None }
      | Machine.Isa.Mem m ->
          let a = resolve mem_size st m 8 in
          invalidate_range st a.alo a.ahi
      | _ -> st
    end
  | Machine.Isa.Push o -> begin
      let rv = rv_of_operand ctx st 8 o in
      let rsp = st.Domain.regs.(gi Machine.Isa.RSP) in
      let nsp = Si.sub rsp.Domain.si (Si.singleton 8) in
      let st = set_reg st (gi Machine.Isa.RSP) { Domain.si = nsp; copy_of = None } in
      match Si.as_singleton nsp with
      | Some a when a >= 0 && a + 8 <= mem_size -> store_clean_exact ctx st a rv
      | _ ->
          let lo, hi =
            match Si.bounds nsp with
            | Some (Some l, Some h) -> (max 0 l, min mem_size (h + 8))
            | _ -> (0, mem_size)
          in
          invalidate_range st lo hi
    end
  | Machine.Isa.Pop o -> begin
      let rsp = st.Domain.regs.(gi Machine.Isa.RSP) in
      let rv =
        match Si.as_singleton rsp.Domain.si with
        | Some a when is_cell mem_size a -> load_rv st a
        | _ -> Domain.top_rv
      in
      let st =
        set_reg st (gi Machine.Isa.RSP)
          { Domain.si = Si.add rsp.Domain.si (Si.singleton 8); copy_of = None }
      in
      match o with
      | Machine.Isa.Reg r when r <> Machine.Isa.RSP -> set_reg st (gi r) rv
      | Machine.Isa.Mem m -> begin
          let a = resolve mem_size st m 8 in
          match a.aexact with
          | Some v -> store_clean_exact ctx st v rv
          | None -> invalidate_range st a.alo a.ahi
        end
      | _ -> st
    end
  (* ---- control flow ---- *)
  | Machine.Isa.Jmp _ | Machine.Isa.Jcc _ | Machine.Isa.Nop | Machine.Isa.Halt -> st
  | Machine.Isa.Call t ->
      ignore t;
      let rsp = st.Domain.regs.(gi Machine.Isa.RSP) in
      let nsp = Si.sub rsp.Domain.si (Si.singleton 8) in
      let st = set_reg st (gi Machine.Isa.RSP) { Domain.si = nsp; copy_of = None } in
      (match Si.as_singleton nsp with
      | Some a when a >= 0 && a + 8 <= mem_size ->
          store_clean_exact ctx st a { Domain.si = Si.singleton (idx + 1); copy_of = None }
      | _ -> st)
  | Machine.Isa.Ret ->
      let rsp = st.Domain.regs.(gi Machine.Isa.RSP) in
      set_reg st (gi Machine.Isa.RSP)
        { Domain.si = Si.add rsp.Domain.si (Si.singleton 8); copy_of = None }
  | Machine.Isa.Call_ext fn -> begin
      match fn with
      | Machine.Isa.Alloc ->
          set_reg st (gi Machine.Isa.RAX)
            { Domain.si = Si.range ctx.heap_base (mem_size - 1); copy_of = None }
      | Machine.Isa.Print_f64 | Machine.Isa.Print_i64 | Machine.Isa.Print_str _
      | Machine.Isa.Write_f64 | Machine.Isa.Exit -> st
      | _ ->
          (* libm: result lands in xmm0, boxed under emulation *)
          set_xmm_clean st 0 false
    end
  | Machine.Isa.Free_hint _ -> st
  (* ---- FP instructions ---- *)
  | Machine.Isa.Fp_arith { w; dst; src = _; _ } -> begin
      match (dst, w) with
      | Machine.Isa.Xmm x, _ -> set_xmm_clean st x false
      | Machine.Isa.Mem m, Machine.Isa.F64 -> fp_store ctx idx st m ~bytes:8 ~clean:false
      | Machine.Isa.Mem m, Machine.Isa.F32 ->
          let a = resolve mem_size st m 4 in
          invalidate_range st a.alo a.ahi
      | _ -> st
    end
  | Machine.Isa.Fp_cmp _ -> st
  | Machine.Isa.Fp_cmppred { w; dst; _ } -> begin
      (* writes an all-ones / all-zeros mask: never a boxed pattern *)
      match (dst, w) with
      | Machine.Isa.Xmm _, _ -> st (* lane0 clean, lane1 untouched: flag unchanged *)
      | Machine.Isa.Mem m, Machine.Isa.F64 -> begin
          let a = resolve mem_size st m 8 in
          match a.aexact with
          | Some v -> store_clean_exact ctx st v Domain.top_rv
          | None -> invalidate_range st a.alo a.ahi
        end
      | Machine.Isa.Mem m, Machine.Isa.F32 ->
          let a = resolve mem_size st m 4 in
          invalidate_range st a.alo a.ahi
      | _ -> st
    end
  | Machine.Isa.Fp_round { w; dst; _ } -> begin
      let to_f32 = w = Machine.Isa.F32 in
      match dst with
      | Machine.Isa.Xmm x ->
          if to_f32 then st (* merges low 32 bits: boxedness of the word unchanged *)
          else set_xmm_clean st x false
      | Machine.Isa.Mem m ->
          if to_f32 then
            let a = resolve mem_size st m 4 in
            invalidate_range st a.alo a.ahi
          else fp_store ctx idx st m ~bytes:8 ~clean:false
      | _ -> st
    end
  | Machine.Isa.Cvt_f2f { from_w; dst; _ } -> begin
      let to_f32 = from_w = Machine.Isa.F64 in (* narrowing writes 4 bytes *)
      match dst with
      | Machine.Isa.Xmm x ->
          if to_f32 then st (* merges low 32 bits: boxedness of the word unchanged *)
          else set_xmm_clean st x false
      | Machine.Isa.Mem m ->
          if to_f32 then
            let a = resolve mem_size st m 4 in
            invalidate_range st a.alo a.ahi
          else fp_store ctx idx st m ~bytes:8 ~clean:false
      | _ -> st
    end
  | Machine.Isa.Cvt_f2i { dst; _ } -> begin
      (* result is a real integer (emulated or native): clean *)
      match dst with
      | Machine.Isa.Reg r -> set_reg st (gi r) Domain.top_rv
      | Machine.Isa.Mem m -> begin
          let a = resolve mem_size st m 8 in
          match a.aexact with
          | Some v -> store_clean_exact ctx st v Domain.top_rv
          | None -> invalidate_range st a.alo a.ahi
        end
      | _ -> st
    end
  | Machine.Isa.Cvt_i2f { w; dst; _ } -> begin
      match (dst, w) with
      | Machine.Isa.Xmm x, Machine.Isa.F64 -> set_xmm_clean st x false
      | Machine.Isa.Xmm _, Machine.Isa.F32 -> st
      | Machine.Isa.Mem m, Machine.Isa.F64 -> fp_store ctx idx st m ~bytes:8 ~clean:false
      | Machine.Isa.Mem m, Machine.Isa.F32 ->
          let a = resolve mem_size st m 4 in
          invalidate_range st a.alo a.ahi
      | _ -> st
    end
  | Machine.Isa.Mov_f { w = Machine.Isa.F64; dst; src } -> begin
      let src_clean =
        match src with
        | Machine.Isa.Xmm s -> st.Domain.xmm_clean.(s)
        | Machine.Isa.Mem m ->
            let a = resolve mem_size st m 8 in
            untainted st a.alo a.ahi
        | _ -> false
      in
      match (dst, src) with
      | Machine.Isa.Xmm d, Machine.Isa.Mem _ ->
          (* memory load zeroes the upper lane *)
          set_xmm_clean st d src_clean
      | Machine.Isa.Xmm d, Machine.Isa.Xmm _ ->
          (* lane0 replaced, lane1 keeps its old bits *)
          set_xmm_clean st d (st.Domain.xmm_clean.(d) && src_clean)
      | Machine.Isa.Mem m, _ -> fp_store ctx idx st m ~bytes:8 ~clean:src_clean
      | _ -> st
    end
  | Machine.Isa.Mov_f { w = Machine.Isa.F32; dst; src = _ } -> begin
      (* 4-byte moves can neither create nor destroy a boxed 8-byte
         pattern (boxedness lives in the high dword) *)
      match dst with
      | Machine.Isa.Mem m ->
          let a = resolve mem_size st m 4 in
          invalidate_range st a.alo a.ahi
      | _ -> st
    end
  | Machine.Isa.Mov_x { dst; src } -> begin
      let src_clean =
        match src with
        | Machine.Isa.Xmm s -> st.Domain.xmm_clean.(s)
        | Machine.Isa.Mem m ->
            let a = resolve mem_size st m 16 in
            untainted st a.alo a.ahi
        | _ -> false
      in
      match dst with
      | Machine.Isa.Xmm d -> set_xmm_clean st d src_clean
      | Machine.Isa.Mem m -> begin
          let a = resolve mem_size st m 16 in
          if src_clean then begin
            let st = invalidate_range st a.alo a.ahi in
            match a.aexact with
            | Some v -> { st with Domain.taint = Domain.taint_kill st.Domain.taint ~lo:v ~hi:(v + 16) }
            | None -> st
          end
          else store_dirty ctx idx st a
        end
      | _ -> st
    end
  | Machine.Isa.Fp_bit { op; dst; src } -> begin
      match (dst, src) with
      | Machine.Isa.Xmm d, Machine.Isa.Xmm s when d = s ->
          if op = Machine.Isa.BXOR || op = Machine.Isa.BANDN then set_xmm_clean st d true
            (* xorpd x,x / andnpd x,x zero the register *)
          else st (* and/or with itself: bits unchanged *)
      | Machine.Isa.Xmm d, _ ->
          (* bit ops on clean inputs can still fabricate a box-shaped
             pattern (e.g. OR setting the tag bit), so the result is
             conservatively dirty *)
          set_xmm_clean st d false
      | Machine.Isa.Mem m, _ ->
          (* in-place rmw on 16 bytes: existing taint survives, no new
             FPVM-introduced box can appear *)
          let a = resolve mem_size st m 16 in
          invalidate_range st a.alo a.ahi
      | _ -> st
    end
  | Machine.Isa.Movq_xr { dst; _ } -> set_reg st (gi dst) Domain.top_rv
  | Machine.Isa.Movq_rx { dst; _ } ->
      (* xmm <- gpr zeroes the upper lane; GPRs never hold boxed bits
         (the inductive invariant the oracle checks) *)
      set_xmm_clean st dst true
  | Machine.Isa.Correctness_trap _ | Machine.Isa.Checked _ | Machine.Isa.Patched _ ->
      st (* never appears: the pipeline runs on the stripped program *)

(* ---- branch refinement ---------------------------------------------------- *)

(* meet the origin's register and root cell with [si'] on one edge *)
let refine_origin (st : Domain.st) (o : Domain.origin) si' : Domain.st option =
  let m = Si.meet o.Domain.osi si' in
  if Si.is_bot m then None
  else begin
    let st =
      match o.Domain.oreg with
      | Some r when Si.equal st.Domain.regs.(r).Domain.si o.Domain.osi ->
          set_reg st r { st.Domain.regs.(r) with Domain.si = m }
      | _ -> st
    in
    let st =
      match o.Domain.ocell with
      | Some c -> begin
          match IntMap.find_opt c st.Domain.cells with
          | Some cell when Si.equal cell.Domain.cv o.Domain.osi ->
              { st with Domain.cells = IntMap.add c { cell with Domain.cv = m } st.Domain.cells }
          | None ->
              { st with
                Domain.cells = IntMap.add c { Domain.cv = m; cell_copy_of = None } st.Domain.cells }
          | Some _ -> st
        end
      | None -> st
    in
    Some st
  end

let half_below hi = Si.range Si.ninf hi (* (-inf, hi] *)
let half_above lo = Si.range lo Si.pinf (* [lo, +inf) *)

(* refine both compare operands along a signed-condition edge.
   [taken] selects the branch direction. *)
let refine_edge (st : Domain.st) (c : Machine.Isa.cond) ~taken : Domain.st option =
  match st.Domain.cmp with
  | None -> Some st
  | Some { Domain.ca; cb } -> begin
      let cond =
        if taken then c
        else
          (* negate *)
          match c with
          | Machine.Isa.Jz -> Machine.Isa.Jnz
          | Machine.Isa.Jnz -> Machine.Isa.Jz
          | Machine.Isa.Jl -> Machine.Isa.Jge
          | Machine.Isa.Jge -> Machine.Isa.Jl
          | Machine.Isa.Jle -> Machine.Isa.Jg
          | Machine.Isa.Jg -> Machine.Isa.Jle
          | c -> c (* unsigned / parity / sign: unhandled, treated below *)
      in
      let ab = Si.bounds ca.Domain.osi and bb = Si.bounds cb.Domain.osi in
      let alo, ahi = match ab with Some (l, h) -> (l, h) | None -> (None, None) in
      let blo, bhi = match bb with Some (l, h) -> (l, h) | None -> (None, None) in
      let fin d v = match v with Some x -> x | None -> d in
      let refine2 sa sb =
        match refine_origin st ca sa with
        | None -> None
        | Some st -> refine_origin st cb sb
      in
      match cond with
      | Machine.Isa.Jl ->
          (* a < b:  a <= bhi-1,  b >= alo+1 *)
          refine2 (half_below (Si.ssub (fin Si.pinf bhi) 1)) (half_above (Si.sadd (fin Si.ninf alo) 1))
      | Machine.Isa.Jle ->
          refine2 (half_below (fin Si.pinf bhi)) (half_above (fin Si.ninf alo))
      | Machine.Isa.Jg ->
          refine2 (half_above (Si.sadd (fin Si.ninf blo) 1)) (half_below (Si.ssub (fin Si.pinf ahi) 1))
      | Machine.Isa.Jge ->
          refine2 (half_above (fin Si.ninf blo)) (half_below (fin Si.pinf ahi))
      | Machine.Isa.Jz ->
          (* equal: meet each with the other *)
          refine2 cb.Domain.osi ca.Domain.osi
      | _ -> Some st (* Jnz and unsigned conds: no useful bound *)
    end

(* ---- the fixpoint engine -------------------------------------------------- *)

let entry_state mem_size =
  let regs = Array.make 16 Domain.top_rv in
  regs.(gi Machine.Isa.RSP) <-
    { Domain.si = Si.singleton (mem_size - 16); copy_of = None };
  { Domain.regs = regs;
    xmm_clean = Array.make 16 false; (* entry registers hold unknown caller bits *)
    cells = IntMap.empty;
    taint = [];
    cmp = None }

(* run the transfer function over one block, returning per-successor
   out-states (branch edges get refined states) *)
let transfer_block ctx (blk : Cfg.block) (st_in : Domain.st) : (int * Domain.st) list =
  let st = ref st_in in
  for i = blk.Cfg.first to blk.Cfg.last do
    st := transfer ctx i !st ctx.insns.(i)
  done;
  let st = !st in
  let n = Array.length ctx.insns in
  match ctx.insns.(blk.Cfg.last) with
  | Machine.Isa.Jcc (c, t) when t >= 0 && t < n && blk.Cfg.last + 1 < n ->
      let tb = ctx.cfg.Cfg.block_of.(t) and fb = ctx.cfg.Cfg.block_of.(blk.Cfg.last + 1) in
      if tb = fb then [ (tb, { st with Domain.cmp = None }) ]
      else begin
        let strip st = { st with Domain.cmp = None } in
        let taken = refine_edge st c ~taken:true in
        let fall = refine_edge st c ~taken:false in
        (match taken with Some s -> [ (tb, strip s) ] | None -> [])
        @ (match fall with Some s -> [ (fb, strip s) ] | None -> [])
      end
  | _ -> List.map (fun s -> (s, st)) blk.Cfg.succs

let analyze (prog : Machine.Program.t) : t =
  let insns = Machine.Program.stripped_insns prog in
  let n = Array.length insns in
  let mem_size = prog.Machine.Program.mem_size in
  let heap_base = ((prog.Machine.Program.data_size + 15) / 16 * 16) + 16 in
  let cfg = Cfg.build insns ~entry:prog.Machine.Program.entry in
  let nb = Array.length cfg.Cfg.blocks in
  let ctx =
    { insns; mem_size; heap_base; cfg; reporting = false; srcs_acc = IntSet.empty;
      sinks_acc = []; loads = 0; proven = 0; exempt_movq = 0; exempt_bit = 0 }
  in
  if n = 0 then
    { sinks = []; sources = []; total_int_loads = 0; proven_safe_loads = 0;
      trap_checks_elided = 0; iterations = 0; n_blocks = 0; n_loop_heads = 0;
      tainted = []; bailed_out = false }
  else begin
    let in_states : Domain.st option array = Array.make nb None in
    let visits = Array.make nb 0 in
    let iterations = ref 0 in
    let bailed = ref false in
    let budget = (200 * nb) + 1000 in
    let module PQ = Set.Make (struct
      type t = int * int (* rpo position, block id *)
      let compare = compare
    end) in
    let wl = ref PQ.empty in
    let push b =
      if cfg.Cfg.rpo_index.(b) < max_int then
        wl := PQ.add (cfg.Cfg.rpo_index.(b), b) !wl
    in
    in_states.(cfg.Cfg.entry) <- Some (entry_state mem_size);
    push cfg.Cfg.entry;
    while (not (PQ.is_empty !wl)) && not !bailed do
      let ((_, b) as elt) = PQ.min_elt !wl in
      wl := PQ.remove elt !wl;
      incr iterations;
      if !iterations > budget then bailed := true
      else begin
        match in_states.(b) with
        | None -> ()
        | Some st_in ->
            let outs = transfer_block ctx cfg.Cfg.blocks.(b) st_in in
            List.iter
              (fun (s, st_out) ->
                match in_states.(s) with
                | None ->
                    in_states.(s) <- Some st_out;
                    visits.(s) <- 1;
                    push s
                | Some old ->
                    let joined = Domain.join old st_out in
                    let joined =
                      if cfg.Cfg.loop_head.(s) && visits.(s) >= 2 then Domain.widen old joined
                      else joined
                    in
                    if not (Domain.equal old joined) then begin
                      in_states.(s) <- Some joined;
                      visits.(s) <- visits.(s) + 1;
                      push s
                    end)
              outs
      end
    done;
    (* ---- report pass: classify with the converged states ---- *)
    ctx.reporting <- true;
    let classify_block (blk : Cfg.block) (st_in : Domain.st option) =
      let st = ref st_in in
      for i = blk.Cfg.first to blk.Cfg.last do
        let insn = insns.(i) in
        (match insn with
        | Machine.Isa.Mov { src = Machine.Isa.Mem m; size; _ } when size >= 4 -> begin
            ctx.loads <- ctx.loads + 1;
            match !st with
            | None ->
                (* unreachable under the analysis: cannot prove, patch *)
                ctx.sinks_acc <- { sink_index = i; kind = K_int_load; srcs = [] } :: ctx.sinks_acc
            | Some st ->
                let a = resolve mem_size st m size in
                let tq = Domain.taint_query st.Domain.taint ~lo:a.alo ~hi:a.ahi in
                if IntSet.is_empty tq then ctx.proven <- ctx.proven + 1
                else
                  ctx.sinks_acc <-
                    { sink_index = i; kind = K_int_load; srcs = IntSet.elements tq } :: ctx.sinks_acc
          end
        | Machine.Isa.Movq_xr { dst; src } -> begin
            let dead =
              i < blk.Cfg.last && overwrites_without_read insns.(i + 1) dst
            in
            let clean =
              match !st with Some st -> st.Domain.xmm_clean.(src) | None -> false
            in
            if !st <> None && (dead || clean) then ctx.exempt_movq <- ctx.exempt_movq + 1
            else ctx.sinks_acc <- { sink_index = i; kind = K_movq; srcs = [] } :: ctx.sinks_acc
          end
        | Machine.Isa.Fp_bit { op = _; dst; src } when not (xmm_of dst <> None && dst = src) -> begin
            let operand_clean st (o : Machine.Isa.operand) bytes =
              match o with
              | Machine.Isa.Xmm x -> st.Domain.xmm_clean.(x)
              | Machine.Isa.Mem m ->
                  let a = resolve mem_size st m bytes in
                  untainted st a.alo a.ahi
              | _ -> false
            in
            match !st with
            | Some st when operand_clean st dst 16 && operand_clean st src 16 ->
                ctx.exempt_bit <- ctx.exempt_bit + 1
            | _ ->
                let srcs =
                  match !st with
                  | None -> []
                  | Some st ->
                      let of_op (o : Machine.Isa.operand) =
                        match o with
                        | Machine.Isa.Mem m ->
                            let a = resolve mem_size st m 16 in
                            Domain.taint_query st.Domain.taint ~lo:a.alo ~hi:a.ahi
                        | _ -> IntSet.empty
                      in
                      IntSet.elements (IntSet.union (of_op dst) (of_op src))
                in
                ctx.sinks_acc <- { sink_index = i; kind = K_fp_bit; srcs } :: ctx.sinks_acc
          end
        | _ -> ());
        st := (match !st with Some s -> Some (transfer ctx i s insn) | None -> None)
      done
    in
    if !bailed then begin
      (* sound bailout: nothing is proven *)
      Array.iteri
        (fun i insn ->
          match insn with
          | Machine.Isa.Mov { src = Machine.Isa.Mem _; size; _ } when size >= 4 ->
              ctx.loads <- ctx.loads + 1;
              ctx.sinks_acc <- { sink_index = i; kind = K_int_load; srcs = [] } :: ctx.sinks_acc
          | Machine.Isa.Movq_xr _ ->
              ctx.sinks_acc <- { sink_index = i; kind = K_movq; srcs = [] } :: ctx.sinks_acc
          | Machine.Isa.Fp_bit { dst; src; _ } when not (xmm_of dst <> None && dst = src) ->
              ctx.sinks_acc <- { sink_index = i; kind = K_fp_bit; srcs = [] } :: ctx.sinks_acc
          | _ -> ())
        insns
    end
    else
      Array.iter
        (fun (blk : Cfg.block) -> classify_block blk in_states.(blk.Cfg.id))
        cfg.Cfg.blocks;
    (* exit taint: join of every reachable block's in-state taint plus
       its own transfer (approximate with in-states; good enough for
       reporting) *)
    let exit_taint =
      Array.fold_left
        (fun acc st -> match st with None -> acc | Some st -> Domain.taint_join acc st.Domain.taint)
        [] in_states
    in
    let sinks =
      List.sort (fun a b -> compare a.sink_index b.sink_index) ctx.sinks_acc
    in
    { sinks;
      sources = IntSet.elements ctx.srcs_acc;
      total_int_loads = ctx.loads;
      proven_safe_loads = ctx.proven;
      trap_checks_elided = ctx.proven + ctx.exempt_movq + ctx.exempt_bit;
      iterations = !iterations;
      n_blocks = nb;
      n_loop_heads = cfg.Cfg.n_loop_heads;
      tainted = List.map (fun (s : Domain.span) -> (s.Domain.lo, s.Domain.hi, IntSet.elements s.Domain.srcs)) exit_taint;
      bailed_out = !bailed }
  end
