(* Fpa: the fourth tier of the static-analysis pipeline — a
   flow-sensitive abstract interpretation of floating-point *values*
   (Fpdomain) run in lockstep with the integer/taint tier (Pipeline),
   over the same CFG, reusing the strided-interval address resolution
   so per-cell FP facts get strong updates exactly where the taint
   tier does.

   Products, per trap-capable FP site (arithmetic, compares, rounds,
   conversions, libm calls):

     v_sub_free  — no raw input lane can hold a subnormal: the JIT may
                   fuse the step without its runtime subnormal scan;
     v_born_free — no NaN/Inf birth is possible here: numprof/shadow
                   instrumentation may be elided at the site;
     v_risks     — the specific births that could not be ruled out
                   ("nan:sqrt-negative", "inf:div-by-zero", ...);
     v_srcs      — producer sites feeding the operands (provenance).

   State pairing: each block's in-state is (Pipeline int state, FP
   state); the FP transfer runs on the *pre* integer state (addresses
   are computed before an instruction writes), then the integer
   transfer advances.  Branch refinement sharpens only the integer
   half; the FP half flows unchanged down both edges.

   FP state representation: 32 lane slots (xmm register x 2 lanes)
   plus a map from 8-aligned cell address to abstract value with the
   ABSENT = TOP convention — only cells with a known-better-than-top
   value are materialized (the initial data segment, classified from
   the program's raw image, plus cells written through resolvable
   addresses).  Imprecise stores drop every cell they may touch. *)

module IntMap = Domain.IntMap
module IntSet = Domain.IntSet
module P = Pipeline
module D = Fpdomain
module Isa = Machine.Isa

type verdict = {
  v_index : int;
  v_sub_free : bool;
  v_born_free : bool;
  v_risks : string list;
  v_srcs : int list;
}

type t = {
  verdicts : verdict array; (* ascending by v_index *)
  sites : int;
  sub_free : int;
  born_free : int;
  proven : int; (* sites with either proof *)
  iterations : int;
  bailed_out : bool;
}

(* ---- the FP half of the paired state ------------------------------------- *)

type fpst = {
  fx : D.v array; (* 32 slots: xmm i lane l at 2i + l *)
  fmem : D.v IntMap.t; (* 8-aligned cell -> value; absent = top *)
}

let fx_get f x lane = f.fx.((x * 2) + lane)

let fx_set f x lane v =
  let fx = Array.copy f.fx in
  fx.((x * 2) + lane) <- v;
  { f with fx }

let cell_get f a = match IntMap.find_opt a f.fmem with Some v -> v | None -> D.top

let f_equal a b =
  let ok = ref (IntMap.equal D.equal a.fmem b.fmem) in
  for i = 0 to 31 do
    if not (D.equal a.fx.(i) b.fx.(i)) then ok := false
  done;
  !ok

let f_merge g a b =
  { fx = Array.init 32 (fun i -> g a.fx.(i) b.fx.(i));
    fmem =
      IntMap.merge
        (fun _ x y ->
          match (x, y) with Some x, Some y -> Some (g x y) | _ -> None)
        a.fmem b.fmem }

let f_join = f_merge D.join
let f_widen = f_merge D.widen

(* drop every cell a store into [lo,hi) may touch (back to top) *)
let drop_range f lo hi =
  if hi <= lo then f
  else
    { f with
      fmem = IntMap.filter (fun a _ -> not (a + 8 > lo && a < hi)) f.fmem }

let drop_acc f (a : P.acc) = drop_range f a.P.alo a.P.ahi

(* ---- initial state -------------------------------------------------------- *)

(* Memory is zero-filled at State.create, then data_init is blitted:
   classify every 8-aligned data-segment cell from the raw image so
   constants (coefficients, grids) enter the analysis bit-exactly. *)
let initial_fmem (prog : Machine.Program.t) =
  let data_size = prog.Machine.Program.data_size in
  let image = Bytes.make (max 0 data_size) '\000' in
  List.iter
    (fun (off, s) ->
      let len = min (String.length s) (Bytes.length image - off) in
      if off >= 0 && len > 0 then Bytes.blit_string s 0 image off len)
    prog.Machine.Program.data_init;
  let m = ref IntMap.empty in
  let a = ref 0 in
  while !a + 8 <= data_size do
    m := IntMap.add !a (D.classify_bits (Bytes.get_int64_le image !a)) !m;
    a := !a + 8
  done;
  !m

let entry_fpst prog = { fx = Array.make 32 D.top; fmem = initial_fmem prog }

(* ---- FP reads and writes -------------------------------------------------- *)

let read_fp ctx (ist : Domain.st) f (o : Isa.operand) lane : D.v =
  match o with
  | Isa.Xmm x -> fx_get f x lane
  | Isa.Mem m -> begin
      let a = P.resolve ctx.P.mem_size ist m 8 in
      match a.P.aexact with
      | Some v when P.is_cell ctx.P.mem_size (v + (8 * lane)) ->
          cell_get f (v + (8 * lane))
      | _ -> D.top
    end
  | Isa.Reg _ | Isa.Imm _ -> D.top

(* an 8-byte FP store of [v]: strong update on an exact cell,
   otherwise drop the whole may-touch range *)
let store_fp ctx (ist : Domain.st) f (m : Isa.mem_addr) lane v =
  let a = P.resolve ctx.P.mem_size ist m 8 in
  match a.P.aexact with
  | Some c when P.is_cell ctx.P.mem_size (c + (8 * lane)) ->
      { f with fmem = IntMap.add (c + (8 * lane)) v f.fmem }
  | _ -> drop_acc f a

let int_store ctx (ist : Domain.st) f (m : Isa.mem_addr) size =
  drop_acc f (P.resolve ctx.P.mem_size ist m size)

let fzero = D.const 0.0

(* binary libm entry points (read xmm0 and xmm1) *)
let ext_binary = function
  | Isa.Atan2 | Isa.Pow | Isa.Fmod | Isa.Hypot -> true
  | _ -> false

let ext_math = function
  | Isa.Print_f64 | Isa.Print_i64 | Isa.Print_str _ | Isa.Write_f64
  | Isa.Alloc | Isa.Exit ->
      false
  | _ -> true

(* trap-capable FP sites the report pass issues verdicts for *)
let is_site (insn : Isa.insn) =
  match insn with
  | Isa.Fp_arith _ | Isa.Fp_cmp _ | Isa.Fp_cmppred _ | Isa.Fp_round _
  | Isa.Cvt_f2f _ | Isa.Cvt_f2i _ ->
      true
  | Isa.Call_ext fn -> ext_math fn
  | _ -> false

(* ---- the FP transfer function --------------------------------------------- *)

(* [observe idx risks inputs] fires once per site during the report
   pass with the operand-lane values the engine's runtime subnormal
   scan would read (mirrors Superblock.fp_inputs) plus the birth risks
   the abstract evaluation could not exclude. *)
let ftransfer ctx ?observe (ist : Domain.st) (f : fpst) idx (insn : Isa.insn) :
    fpst =
  let obs risks inputs =
    match observe with Some g -> g idx risks inputs | None -> ()
  in
  let rd o lane = read_fp ctx ist f o lane in
  match insn with
  | Isa.Fp_arith { op; w = Isa.F64; packed; dst; src } ->
      let lanes = if packed then 2 else 1 in
      let risks = ref [] and inputs = ref [] and results = ref [] in
      for lane = 0 to lanes - 1 do
        let c = rd src lane in
        let r, rk =
          match op with
          | Isa.FSQRT ->
              inputs := c :: !inputs;
              D.fsqrt c
          | _ ->
              let a = rd dst lane in
              inputs := c :: a :: !inputs;
              (match op with
              | Isa.FADD -> D.fadd a c
              | Isa.FSUB -> D.fsub a c
              | Isa.FMUL -> D.fmul a c
              | Isa.FDIV -> D.fdiv a c
              | Isa.FMIN | Isa.FMAX -> D.fminmax a c
              | Isa.FSQRT -> assert false)
        in
        risks := !risks @ List.filter (fun t -> not (List.mem t !risks)) rk;
        results := (lane, D.with_src idx r) :: !results
      done;
      obs !risks (List.rev !inputs);
      List.fold_left
        (fun f (lane, r) ->
          match dst with
          | Isa.Xmm x -> fx_set f x lane r
          | Isa.Mem m -> store_fp ctx ist f m lane r
          | _ -> f)
        f !results
  | Isa.Fp_arith { w = Isa.F32; dst; _ } -> begin
      obs [ "unknown:f32" ] [ D.top ];
      match dst with
      | Isa.Xmm x -> fx_set f x 0 D.top (* low 32 bits merge: word unknown *)
      | Isa.Mem m -> int_store ctx ist f m 4
      | _ -> f
    end
  | Isa.Fp_cmp { w = Isa.F64; a; b; _ } ->
      obs [] [ rd a 0; rd b 0 ];
      f
  | Isa.Fp_cmp _ ->
      obs [ "unknown:f32" ] [ D.top ];
      f
  | Isa.Fp_cmppred { w = Isa.F64; dst; src; _ } -> begin
      obs [] [ rd dst 0; rd src 0 ];
      (* writes an all-ones (a NaN pattern) or all-zeros (+0) mask *)
      let mask = D.with_src idx { D.bot with D.nan = true; D.zero = true } in
      match dst with
      | Isa.Xmm x -> fx_set f x 0 mask
      | Isa.Mem m -> store_fp ctx ist f m 0 mask
      | _ -> f
    end
  | Isa.Fp_cmppred { dst; _ } -> begin
      obs [ "unknown:f32" ] [ D.top ];
      match dst with
      | Isa.Xmm x -> fx_set f x 0 D.top
      | Isa.Mem m -> int_store ctx ist f m 4
      | _ -> f
    end
  | Isa.Fp_round { w = Isa.F64; dst; src; _ } -> begin
      let a = rd src 0 in
      let r, risks = D.fround a in
      obs risks [ a ];
      let r = D.with_src idx r in
      match dst with
      | Isa.Xmm x -> fx_set f x 0 r
      | Isa.Mem m -> store_fp ctx ist f m 0 r
      | _ -> f
    end
  | Isa.Fp_round { dst; _ } -> begin
      obs [ "unknown:f32" ] [ D.top ];
      match dst with
      | Isa.Xmm x -> fx_set f x 0 D.top
      | Isa.Mem m -> int_store ctx ist f m 4
      | _ -> f
    end
  | Isa.Cvt_f2f { from_w = Isa.F64; dst; _ } -> begin
      (* narrowing: the f32 result merges into 4 bytes *)
      let a =
        match insn with Isa.Cvt_f2f { src; _ } -> rd src 0 | _ -> D.top
      in
      obs (D.cvt_f2f_risks a) [ a ];
      match dst with
      | Isa.Xmm x -> fx_set f x 0 D.top
      | Isa.Mem m -> int_store ctx ist f m 4
      | _ -> f
    end
  | Isa.Cvt_f2f { from_w = Isa.F32; dst; _ } -> begin
      (* widening is exact; every f32 lands in the f64 normal range *)
      obs [] [ D.top ];
      let r = D.with_src idx D.of_f32 in
      match dst with
      | Isa.Xmm x -> fx_set f x 0 r
      | Isa.Mem m -> store_fp ctx ist f m 0 r
      | _ -> f
    end
  | Isa.Cvt_f2i { w; size; dst; src; _ } -> begin
      (if w = Isa.F64 then
         let a = rd src 0 in
         obs (D.cvt_f2i_risks ~size a) [ a ]
       else obs [ "unknown:f32" ] [ D.top ]);
      match dst with
      | Isa.Mem m -> int_store ctx ist f m (max size 8)
      | _ -> f
    end
  | Isa.Cvt_i2f { w = Isa.F64; size; dst; src } -> begin
      let r =
        match Si.as_singleton (P.rv_of_operand ctx ist size src).Domain.si with
        | Some k ->
            let k =
              if size = 4 && k land 0x80000000 <> 0 then k - 0x100000000
              else k
            in
            D.const (float_of_int k)
        | None -> D.of_int ~bits:(if size = 8 then 63 else 31)
      in
      let r = D.with_src idx r in
      match dst with
      | Isa.Xmm x -> fx_set (fx_set f x 0 r) x 1 fzero
      | Isa.Mem m -> store_fp ctx ist f m 0 r
      | _ -> f
    end
  | Isa.Cvt_i2f { dst; _ } -> begin
      match dst with
      | Isa.Xmm x -> fx_set f x 0 D.top
      | Isa.Mem m -> int_store ctx ist f m 4
      | _ -> f
    end
  | Isa.Mov_f { w = Isa.F64; dst; src } -> begin
      let v = rd src 0 in
      match (dst, src) with
      | Isa.Xmm d, Isa.Mem _ ->
          (* memory load zeroes the upper lane *)
          fx_set (fx_set f d 0 v) d 1 fzero
      | Isa.Xmm d, _ -> fx_set f d 0 v (* reg move: lane1 keeps its bits *)
      | Isa.Mem m, _ -> store_fp ctx ist f m 0 v
      | _ -> f
    end
  | Isa.Mov_f { w = Isa.F32; dst; _ } -> begin
      match dst with
      | Isa.Xmm x -> fx_set f x 0 D.top
      | Isa.Mem m -> int_store ctx ist f m 4
      | _ -> f
    end
  | Isa.Mov_x { dst; src } -> begin
      let v0 = rd src 0 and v1 = rd src 1 in
      match dst with
      | Isa.Xmm d -> fx_set (fx_set f d 0 v0) d 1 v1
      | Isa.Mem m -> begin
          let a = P.resolve ctx.P.mem_size ist m 16 in
          match a.P.aexact with
          | Some c
            when P.is_cell ctx.P.mem_size c && P.is_cell ctx.P.mem_size (c + 8)
            ->
              { f with
                fmem = IntMap.add (c + 8) v1 (IntMap.add c v0 f.fmem) }
          | _ -> drop_acc f a
        end
      | _ -> f
    end
  | Isa.Fp_bit { op; dst; src } -> begin
      match (dst, src) with
      | Isa.Xmm d, Isa.Xmm s
        when d = s && (op = Isa.BXOR || op = Isa.BANDN) ->
          (* xorpd/andnpd x,x: the canonical zeroing idiom *)
          fx_set (fx_set f d 0 (D.with_src idx fzero)) d 1
            (D.with_src idx fzero)
      | Isa.Xmm d, Isa.Xmm s when d = s -> f (* and/or with itself *)
      | Isa.Xmm d, _ ->
          (* bit ops can forge any pattern *)
          fx_set (fx_set f d 0 D.top) d 1 D.top
      | Isa.Mem m, _ -> int_store ctx ist f m 16
      | _ -> f
    end
  | Isa.Movq_rx { dst; _ } ->
      (* gpr bits are untracked as FP; upper lane is zeroed *)
      fx_set (fx_set f dst 0 D.top) dst 1 fzero
  | Isa.Movq_xr _ -> f
  | Isa.Call_ext fn when ext_math fn ->
      let a = fx_get f 0 0 in
      let c = if ext_binary fn then fx_get f 1 0 else D.bot in
      let r, risks = D.ext_transfer fn a c in
      obs risks (if ext_binary fn then [ a; c ] else [ a ]);
      fx_set (fx_set f 0 0 (D.with_src idx r)) 0 1 fzero
  | Isa.Call_ext _ -> f (* print/write/alloc/exit: no FP state change *)
  (* ---- integer instructions that write memory drop FP cell facts ---- *)
  | Isa.Mov { size; dst = Isa.Mem m; _ } -> int_store ctx ist f m size
  | Isa.Int_arith { dst = Isa.Mem m; _ } -> int_store ctx ist f m 8
  | Isa.Inc (Isa.Mem m) | Isa.Dec (Isa.Mem m) | Isa.Neg (Isa.Mem m) ->
      int_store ctx ist f m 8
  | Isa.Pop (Isa.Mem m) -> int_store ctx ist f m 8
  | Isa.Push _ | Isa.Call _ -> begin
      (* writes 8 bytes at RSP - 8 (the pre-state RSP) *)
      let rsp = ist.Domain.regs.(P.gi Isa.RSP).Domain.si in
      let nsp = Si.sub rsp (Si.singleton 8) in
      match Si.as_singleton nsp with
      | Some a -> drop_range f a (a + 8)
      | None -> begin
          match Si.bounds nsp with
          | Some (Some l, Some h) ->
              drop_range f (max 0 l) (min ctx.P.mem_size (h + 8))
          | _ -> { f with fmem = IntMap.empty }
        end
    end
  | _ -> f

(* ---- the paired fixpoint --------------------------------------------------- *)

type pair = Domain.st * fpst

let pair_equal (a, fa) (b, fb) = Domain.equal a b && f_equal fa fb
let pair_join (a, fa) (b, fb) = (Domain.join a b, f_join fa fb)
let pair_widen (a, fa) (b, fb) = (Domain.widen a b, f_widen fa fb)

let transfer_pair ctx ?observe ((ist, f) : pair) i insn : pair =
  let f' = ftransfer ctx ?observe ist f i insn in
  (P.transfer ctx i ist insn, f')

(* mirror of Pipeline.transfer_block over the paired state: branch
   refinement sharpens the integer half only *)
let transfer_block ctx ?observe (blk : Cfg.block) (pin : pair) :
    (int * pair) list =
  let p = ref pin in
  for i = blk.Cfg.first to blk.Cfg.last do
    p := transfer_pair ctx ?observe !p i ctx.P.insns.(i)
  done;
  let st, fp = !p in
  let n = Array.length ctx.P.insns in
  match ctx.P.insns.(blk.Cfg.last) with
  | Isa.Jcc (c, t) when t >= 0 && t < n && blk.Cfg.last + 1 < n ->
      let tb = ctx.P.cfg.Cfg.block_of.(t)
      and fb = ctx.P.cfg.Cfg.block_of.(blk.Cfg.last + 1) in
      if tb = fb then [ (tb, ({ st with Domain.cmp = None }, fp)) ]
      else begin
        let strip st = { st with Domain.cmp = None } in
        let taken = P.refine_edge st c ~taken:true in
        let fall = P.refine_edge st c ~taken:false in
        (match taken with Some s -> [ (tb, (strip s, fp)) ] | None -> [])
        @ (match fall with Some s -> [ (fb, (strip s, fp)) ] | None -> [])
      end
  | _ -> List.map (fun s -> (s, (st, fp))) blk.Cfg.succs

let unproven_verdict i insn =
  { v_index = i;
    v_sub_free = false;
    v_born_free = false;
    v_risks =
      [ (match insn with
        | Isa.Call_ext _ -> "unproven:libm"
        | _ -> "unproven:no-fact") ];
    v_srcs = [] }

let born_free_of risks =
  List.for_all
    (fun r ->
      not
        (String.length r >= 4
         && (String.sub r 0 4 = "nan:" || String.sub r 0 4 = "inf:"
            || String.length r >= 8
               && String.sub r 0 8 = "unknown:"
            || String.length r >= 9
               && String.sub r 0 9 = "unproven:")))
    risks

let analyze (prog : Machine.Program.t) : t =
  let insns = Machine.Program.stripped_insns prog in
  let n = Array.length insns in
  let mem_size = prog.Machine.Program.mem_size in
  let heap_base = ((prog.Machine.Program.data_size + 15) / 16 * 16) + 16 in
  if n = 0 then
    { verdicts = [||]; sites = 0; sub_free = 0; born_free = 0; proven = 0;
      iterations = 0; bailed_out = false }
  else begin
    let cfg = Cfg.build insns ~entry:prog.Machine.Program.entry in
    let nb = Array.length cfg.Cfg.blocks in
    let ctx =
      { P.insns; mem_size; heap_base; cfg; reporting = false;
        srcs_acc = IntSet.empty; sinks_acc = []; loads = 0; proven = 0;
        exempt_movq = 0; exempt_bit = 0 }
    in
    let in_states : pair option array = Array.make nb None in
    let visits = Array.make nb 0 in
    let iterations = ref 0 in
    let bailed = ref false in
    let budget = (200 * nb) + 1000 in
    let module PQ = Set.Make (struct
      type t = int * int
      let compare = compare
    end) in
    let wl = ref PQ.empty in
    let push b =
      if cfg.Cfg.rpo_index.(b) < max_int then
        wl := PQ.add (cfg.Cfg.rpo_index.(b), b) !wl
    in
    in_states.(cfg.Cfg.entry) <- Some (P.entry_state mem_size, entry_fpst prog);
    push cfg.Cfg.entry;
    while (not (PQ.is_empty !wl)) && not !bailed do
      let ((_, b) as elt) = PQ.min_elt !wl in
      wl := PQ.remove elt !wl;
      incr iterations;
      if !iterations > budget then bailed := true
      else begin
        match in_states.(b) with
        | None -> ()
        | Some pin ->
            let outs = transfer_block ctx cfg.Cfg.blocks.(b) pin in
            List.iter
              (fun (s, pout) ->
                match in_states.(s) with
                | None ->
                    in_states.(s) <- Some pout;
                    visits.(s) <- 1;
                    push s
                | Some old ->
                    let joined = pair_join old pout in
                    let joined =
                      if cfg.Cfg.loop_head.(s) && visits.(s) >= 2 then
                        pair_widen old joined
                      else joined
                    in
                    if not (pair_equal old joined) then begin
                      in_states.(s) <- Some joined;
                      visits.(s) <- visits.(s) + 1;
                      push s
                    end)
              outs
      end
    done;
    (* ---- report pass: verdicts from the converged states ---- *)
    let seen : (int, verdict) Hashtbl.t = Hashtbl.create 64 in
    let observe idx risks (inputs : D.v list) =
      let v_sub_free =
        inputs <> [] && List.for_all (fun (v : D.v) -> not v.D.sub) inputs
      in
      let v_srcs =
        IntSet.elements
          (List.fold_left
             (fun acc (v : D.v) -> D.IntSet.fold IntSet.add v.D.srcs acc)
             IntSet.empty inputs)
      in
      Hashtbl.replace seen idx
        { v_index = idx;
          v_sub_free;
          v_born_free = born_free_of risks;
          v_risks = risks;
          v_srcs }
    in
    if not !bailed then
      Array.iter
        (fun (blk : Cfg.block) ->
          match in_states.(blk.Cfg.id) with
          | None -> ()
          | Some pin -> ignore (transfer_block ctx ~observe blk pin))
        cfg.Cfg.blocks;
    let verdicts = ref [] in
    Array.iteri
      (fun i insn ->
        if is_site insn then
          match Hashtbl.find_opt seen i with
          | Some v -> verdicts := v :: !verdicts
          | None -> verdicts := unproven_verdict i insn :: !verdicts)
      insns;
    let verdicts =
      Array.of_list
        (List.sort (fun a b -> compare a.v_index b.v_index) !verdicts)
    in
    let count p = Array.fold_left (fun n v -> if p v then n + 1 else n) 0 verdicts in
    { verdicts;
      sites = Array.length verdicts;
      sub_free = count (fun v -> v.v_sub_free);
      born_free = count (fun v -> v.v_born_free);
      proven = count (fun v -> v.v_sub_free || v.v_born_free);
      iterations = !iterations;
      bailed_out = !bailed }
  end

(* per-index lookup arrays for the engine's O(1) consumers *)
let sub_free_array t n =
  let a = Array.make n false in
  Array.iter (fun v -> if v.v_index < n then a.(v.v_index) <- v.v_sub_free) t.verdicts;
  a

let born_free_array t n =
  let a = Array.make n false in
  Array.iter (fun v -> if v.v_index < n then a.(v.v_index) <- v.v_born_free) t.verdicts;
  a
