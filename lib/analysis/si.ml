(* Strided intervals, after Balakrishnan & Reps (CC'04): an abstract value
   s[lo, hi] denotes { lo, lo+s, lo+2s, ... } ∩ [lo, hi].  This is the value
   domain the precision-tiered VSA uses for GPR and memory-cell contents, so
   an indexed access  base + i*8  with i ∈ 1[0,n-1] resolves to the bounded
   byte range 8[base, base+8(n-1)] instead of Anywhere.

   Representation notes:
   - bounds are OCaml ints; [ninf]/[pinf] are sentinels for ±∞.
   - invariant: stride >= 0; stride = 0 iff the value is a singleton;
     stride > 1 requires a finite [lo] (the congruence class is anchored at
     lo, which is meaningless when lo = -∞).  [hi] may be +∞ with any
     stride.
   - all arithmetic saturates at the sentinels; saturation is sound because
     a saturated bound only widens the denoted set. *)

type t =
  | Bot
  | SI of { stride : int; lo : int; hi : int }

let ninf = min_int
let pinf = max_int

let top = SI { stride = 1; lo = ninf; hi = pinf }
let bot = Bot

let singleton v = SI { stride = 0; lo = v; hi = v }

let is_bot v = v = Bot

let norm stride lo hi =
  if lo > hi then Bot
  else if lo = hi then singleton lo
  else
    let stride = if stride <= 0 then 1 else stride in
    (* stride > 1 needs a finite anchor; and clip hi onto the lattice of
       representable points when both bounds are finite. *)
    if lo = ninf then SI { stride = 1; lo; hi }
    else
      let hi =
        if hi = pinf || stride = 1 then hi
        else lo + (hi - lo) / stride * stride
      in
      if lo = hi then singleton lo else SI { stride; lo; hi }

let range ?(stride = 1) lo hi = norm stride lo hi

let as_singleton = function
  | SI { stride = 0; lo; _ } -> Some lo
  | _ -> None

(* Bounds as options (None = infinite). *)
let bounds = function
  | Bot -> None
  | SI { lo; hi; _ } ->
      Some ((if lo = ninf then None else Some lo), (if hi = pinf then None else Some hi))

let equal (a : t) (b : t) = a = b

let contains v x =
  match v with
  | Bot -> false
  | SI { stride; lo; hi } ->
      x >= lo && x <= hi
      && (stride <= 1 || lo = ninf || (x - lo) mod stride = 0)

(* ---- saturating scalar helpers ------------------------------------------ *)

let sadd a b =
  if a = ninf || b = ninf then ninf
  else if a = pinf || b = pinf then pinf
  else
    let s = a + b in
    (* two's-complement overflow check *)
    if a >= 0 && b >= 0 && s < 0 then pinf
    else if a < 0 && b < 0 && s >= 0 then ninf
    else s

let sneg a = if a = ninf then pinf else if a = pinf then ninf else -a

let ssub a b = sadd a (sneg b)

let smul a b =
  if a = 0 || b = 0 then 0
  else
    let pos = a > 0 = (b > 0) in
    if a = ninf || a = pinf || b = ninf || b = pinf then (if pos then pinf else ninf)
    else
      let p = a * b in
      if p / b <> a then (if pos then pinf else ninf) else p

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* ---- lattice ops --------------------------------------------------------- *)

let join a b =
  match (a, b) with
  | Bot, v | v, Bot -> v
  | SI x, SI y ->
      let lo = min x.lo y.lo and hi = max x.hi y.hi in
      let stride =
        if lo = ninf then 1
        else
          let s = gcd x.stride y.stride in
          let s = if x.lo = pinf || y.lo = pinf then s else gcd s (abs (x.lo - y.lo)) in
          s
      in
      norm stride lo hi

(* Meet.  Precise when one side has stride <= 1 or strides agree with the
   same congruence class; otherwise falls back to a stride-1 bounds meet,
   which over-approximates (sound). *)
let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | SI x, SI y ->
      let lo = max x.lo y.lo and hi = min x.hi y.hi in
      if lo > hi then Bot
      else
        let anchor, stride =
          match (x.stride, y.stride) with
          | (0 | 1), (0 | 1) -> (lo, 1)
          | s, (0 | 1) -> (x.lo, s)
          | (0 | 1), s -> (y.lo, s)
          | s1, s2 when s1 = s2 && x.lo <> ninf && y.lo <> ninf
                        && (x.lo - y.lo) mod s1 = 0 -> (x.lo, s1)
          | _ -> (lo, 1)
        in
        if stride <= 1 || anchor = ninf || lo = ninf then norm 1 lo hi
        else
          (* snap lo up / hi down onto the congruence class of anchor *)
          let d = lo - anchor in
          let lo' = if d mod stride = 0 then lo else lo + (stride - (d mod stride + stride) mod stride) in
          let d' = hi - anchor in
          let hi' = hi - ((d' mod stride) + stride) mod stride in
          if lo' > hi' then Bot else norm stride lo' hi'

(* Classic widening: any bound that grew jumps to ±∞.  Strides are joined
   via gcd so congruence survives widening when the anchor stays finite. *)
let widen old nw =
  match (old, nw) with
  | Bot, v -> v
  | v, Bot -> v
  | SI x, SI y ->
      let lo = if y.lo < x.lo then ninf else x.lo in
      let hi = if y.hi > x.hi then pinf else x.hi in
      let stride =
        if lo = ninf then 1
        else
          let s = gcd x.stride y.stride in
          if y.lo = pinf then s else gcd s (abs (x.lo - y.lo))
      in
      norm stride lo hi

(* ---- transfer arithmetic ------------------------------------------------- *)

let add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | SI x, SI y ->
      norm (gcd x.stride y.stride) (sadd x.lo y.lo) (sadd x.hi y.hi)

let neg = function
  | Bot -> Bot
  | SI x -> norm x.stride (sneg x.hi) (sneg x.lo)

let sub a b = add a (neg b)

let mul a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | SI { stride = 0; lo = k; _ }, SI x | SI x, SI { stride = 0; lo = k; _ } ->
      if k = 0 then singleton 0
      else
        let b1 = smul x.lo k and b2 = smul x.hi k in
        norm (abs (smul x.stride k)) (min b1 b2) (max b1 b2)
  | SI x, SI y ->
      let ps = [ smul x.lo y.lo; smul x.lo y.hi; smul x.hi y.lo; smul x.hi y.hi ] in
      norm 1 (List.fold_left min pinf ps) (List.fold_left max ninf ps)

let shl a k =
  if k < 0 || k > 62 then top
  else mul a (singleton (1 lsl k))

let logand a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | SI { stride = 0; lo = x; _ }, SI { stride = 0; lo = y; _ } -> singleton (x land y)
  | SI { stride = 0; lo = m; _ }, _ | _, SI { stride = 0; lo = m; _ } when m >= 0 ->
      (* AND with a non-negative constant mask is bounded by the mask *)
      norm 1 0 m
  | _ -> top

let logor a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | SI { stride = 0; lo = x; _ }, SI { stride = 0; lo = y; _ } -> singleton (x lor y)
  | _ -> top

let logxor a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | SI { stride = 0; lo = x; _ }, SI { stride = 0; lo = y; _ } -> singleton (x lxor y)
  | _ -> top

let pp fmt = function
  | Bot -> Format.fprintf fmt "⊥"
  | SI { stride; lo; hi } ->
      let b fmt v =
        if v = ninf then Format.fprintf fmt "-inf"
        else if v = pinf then Format.fprintf fmt "+inf"
        else Format.fprintf fmt "%d" v
      in
      Format.fprintf fmt "%d[%a,%a]" stride b lo b hi
