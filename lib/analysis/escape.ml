(* No-escape facts for in-trace shadow-temp elision.

   A scalar binary64 FP result written to an xmm register is normally
   NaN-boxed: a fresh arena cell per emulation. Inside a trace, though,
   many of these are dataflow-local — produced, consumed by a later
   trace instruction's unbox, and overwritten — and the engine can keep
   them in a per-trace scratch buffer instead (engine.ml), skipping the
   arena round trip.

   Elision is *always sound* at trace exit (the engine promotes any
   scratch temp still referenced by a register or a recorded spill word
   to a real box, and its in-trace guard intercepts every raw flow of
   the pattern), so this analysis answers a profitability question per
   site: starting from the instruction after the producer, does
   straight-line execution keep the value on the binary64 dataflow
   paths the engine tracks, until the register is overwritten?

   - Emulated FP consumers (F64 arith/compare/round/convert reads) are
     fine: a scratch temp is still a signaling-NaN box, so the consumer
     faults into the emulator exactly as a real box would, and unbox
     resolves the scratch slot.
   - Binary64 moves ([Mov_f]/[Mov_x]) are fine too: a register copy is
     swept at trace exit, and a store is recorded by the engine and
     re-boxed there if the word survives.
   - Raw-bit observers make elision pointless (the engine's guard would
     materialize immediately): [Movq_xr], bit ops ([Fp_bit]), any
     F32-width access (reads/writes 32 of the box's 64 bits), integer
     ops on the register, and [Free_hint] (plans-off eager-frees a
     real box there).
   - Control flow, FPVM instrumentation, external calls and the scan
     cap are conservative failures: past them the straight-line
     argument is gone.

   The scan is per-site, linear and bounded, run once at prepare time
   over the patched program (and re-run when trap-and-patch rewrites a
   site). *)

module Isa = Machine.Isa

let scan_cap = 64

(* Does [o] name xmm register [x]? *)
let is_x x (o : Isa.operand) = match o with Isa.Xmm i -> i = x | _ -> false

(* What the instruction at [insns.(j)] does to the temp living in xmm
   [x]'s lane 0. *)
type verdict =
  | V_kill (* overwrites x's full lane 0 without observing raw bits *)
  | V_continue (* doesn't touch x, or consumes it through unbox *)
  | V_fail (* observes raw bits, or ends the straight-line argument *)

let step x (insn : Isa.insn) : verdict =
  match insn with
  (* --- emulatable FP, binary64: reads of x go through unbox --- *)
  | Isa.Fp_arith { w = Isa.F64; dst; _ } ->
      if is_x x dst then V_kill (* read (if any) happens before the write *)
      else V_continue
  | Isa.Fp_cmp { w = Isa.F64; _ } -> V_continue
  | Isa.Fp_cmppred { w = Isa.F64; dst; _ } ->
      if is_x x dst then V_kill else V_continue
  | Isa.Fp_round { w = Isa.F64; dst; src } ->
      if is_x x src then if is_x x dst then V_kill else V_continue
      else if is_x x dst then V_kill
      else V_continue
  | Isa.Cvt_f2f { from_w = Isa.F64; dst; _ } ->
      (* narrowing: the destination takes a *partial* 32-bit write *)
      if is_x x dst then V_fail else V_continue
  | Isa.Cvt_f2f { from_w = Isa.F32; dst; src } ->
      (* widening: source is a raw 32-bit read; dst gets a full box *)
      if is_x x src then V_fail
      else if is_x x dst then V_kill
      else V_continue
  | Isa.Cvt_f2i { w = Isa.F64; _ } -> V_continue (* dst is gpr/mem *)
  | Isa.Cvt_i2f { w = Isa.F64; dst; src } ->
      if is_x x src then V_fail (* src can only be gpr/mem/imm; defensive *)
      else if is_x x dst then V_kill
      else V_continue
  (* --- any F32-width FP op touching x observes raw bits --- *)
  | Isa.Fp_arith { w = Isa.F32; dst; src; _ }
  | Isa.Fp_cmppred { w = Isa.F32; dst; src; _ }
  | Isa.Fp_round { w = Isa.F32; dst; src }
  | Isa.Cvt_f2i { w = Isa.F32; dst; src; _ }
  | Isa.Cvt_i2f { w = Isa.F32; dst; src } ->
      if is_x x dst || is_x x src then V_fail else V_continue
  | Isa.Fp_cmp { w = Isa.F32; a; b; _ } ->
      if is_x x a || is_x x b then V_fail else V_continue
  (* --- binary64 moves: transparent to a temp. A copy lands in a
         swept xmm register; a store is recorded by the engine's
         in-trace guard and re-boxed at trace exit if it survives, so
         neither ends the elision argument. --- *)
  | Isa.Mov_f { w = Isa.F64; dst; _ } ->
      if is_x x dst then V_kill (* full lane-0 overwrite *)
      else V_continue
  | Isa.Mov_f { w = Isa.F32; dst; src } ->
      if is_x x dst || is_x x src then V_fail else V_continue
  | Isa.Mov_x { dst; src } ->
      ignore src;
      if is_x x dst then V_kill (* full 128-bit overwrite *)
      else V_continue
  | Isa.Movq_xr { src; _ } -> if src = x then V_fail else V_continue
  | Isa.Movq_rx { dst; _ } -> if dst = x then V_kill else V_continue
  | Isa.Fp_bit { dst; src; _ } ->
      if is_x x dst || is_x x src then V_fail else V_continue
  (* --- shadow-death hint: eager-frees a real box; a temp can't mimic
         that, and a dangling read after it would diverge --- *)
  | Isa.Free_hint o -> if is_x x o then V_fail else V_continue
  (* --- integer glue: xmm operands would be raw observations --- *)
  | Isa.Mov { dst; src; _ } | Isa.Int_arith { dst; src; _ } ->
      if is_x x dst || is_x x src then V_fail else V_continue
  | Isa.Cmp { a; b } | Isa.Test { a; b } ->
      if is_x x a || is_x x b then V_fail else V_continue
  | Isa.Inc o | Isa.Dec o | Isa.Neg o | Isa.Push o | Isa.Pop o ->
      if is_x x o then V_fail else V_continue
  | Isa.Lea _ | Isa.Nop -> V_continue
  (* --- control flow, externals, instrumentation, end of program:
         the straight-line argument stops here --- *)
  | Isa.Jmp _ | Isa.Jcc _ | Isa.Call _ | Isa.Ret | Isa.Call_ext _
  | Isa.Halt
  | Isa.Correctness_trap _ | Isa.Checked _ | Isa.Patched _ ->
      V_fail

(* Scan forward from the producer at [idx] (which must be a plain
   scalar binary64 Fp_arith writing an xmm register). *)
let site_no_escape (insns : Isa.insn array) idx =
  match insns.(idx) with
  | Isa.Fp_arith { w = Isa.F64; packed = false; dst = Isa.Xmm x; _ } ->
      let n = Array.length insns in
      let rec scan j steps =
        if steps > scan_cap || j >= n then false
        else
          match step x insns.(j) with
          | V_kill -> true
          | V_continue -> scan (j + 1) (steps + 1)
          | V_fail -> false
      in
      scan (idx + 1) 1
  | _ -> false

(* Per-index elision facts over the (patched) program. *)
let no_escape (insns : Isa.insn array) : bool array =
  Array.init (Array.length insns) (fun i -> site_no_escape insns i)
