(* The abstract state of the flow-sensitive pass: per-GPR strided
   intervals with copy provenance, per-xmm cleanliness, abstract memory
   cells (8-byte, 8-aligned) and the taint map — a set of disjoint byte
   intervals each carrying the set of source instructions whose stored
   FP (possibly NaN-boxed) values may live there.

   Strong updates: an exact 8-byte integer store subtracts its interval
   from the taint map (the boxed value is gone); an exact FP store adds
   one.  Imprecise stores only add.

   Copy provenance ties a register to the root memory cell it was loaded
   from (transitively through reg->cell->reg copy chains the -O0-style
   code generator emits), so a compare on a freshly loaded temp can
   refine the *root* cell (e.g. the loop counter slot) at a branch. *)

module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

(* ---- taint spans --------------------------------------------------------- *)

(* byte interval [lo, hi), srcs = contributing source instruction idxs *)
type span = { lo : int; hi : int; srcs : IntSet.t }

type taint = span list (* sorted by lo, pairwise disjoint, all non-empty *)

let span_equal a b = a.lo = b.lo && a.hi = b.hi && IntSet.equal a.srcs b.srcs

let taint_equal a b =
  try List.for_all2 span_equal a b with Invalid_argument _ -> false

(* merge adjacent spans with identical provenance (normalization only) *)
let rec coalesce = function
  | a :: b :: rest when a.hi = b.lo && IntSet.equal a.srcs b.srcs ->
      coalesce ({ lo = a.lo; hi = b.hi; srcs = a.srcs } :: rest)
  | a :: rest -> a :: coalesce rest
  | [] -> []

let taint_add spans ~lo ~hi ~srcs =
  if hi <= lo then spans
  else begin
    let before, rest = List.partition (fun s -> s.hi <= lo) spans in
    let overlap, after = List.partition (fun s -> s.lo < hi) rest in
    let merged =
      List.fold_left
        (fun acc s -> { lo = min acc.lo s.lo; hi = max acc.hi s.hi; srcs = IntSet.union acc.srcs s.srcs })
        { lo; hi; srcs } overlap
    in
    coalesce (before @ (merged :: after))
  end

let taint_kill spans ~lo ~hi =
  if hi <= lo then spans
  else
    List.concat_map
      (fun s ->
        if s.hi <= lo || s.lo >= hi then [ s ]
        else
          (if s.lo < lo then [ { s with hi = lo } ] else [])
          @ if s.hi > hi then [ { s with lo = hi } ] else [])
      spans

(* provenance of any taint overlapping [lo, hi); empty set = untainted *)
let taint_query spans ~lo ~hi =
  List.fold_left
    (fun acc s -> if s.hi <= lo || s.lo >= hi then acc else IntSet.union acc s.srcs)
    IntSet.empty spans

let taint_join a b = List.fold_left (fun acc s -> taint_add acc ~lo:s.lo ~hi:s.hi ~srcs:s.srcs) a b

(* ---- registers, cells, compare facts ------------------------------------- *)

type rv = { si : Si.t; copy_of : int option (* root cell address *) }

type cell = { cv : Si.t; cell_copy_of : int option }

(* where a compared operand came from, for branch refinement *)
type origin = { osi : Si.t; oreg : int option (* gpr index *); ocell : int option }

type cmp_info = { ca : origin; cb : origin }

type st = {
  regs : rv array; (* 16 *)
  xmm_clean : bool array; (* 16: whole register provably not NaN-boxed *)
  cells : cell IntMap.t;
  taint : taint;
  cmp : cmp_info option;
}

let top_rv = { si = Si.top; copy_of = None }

let copy_st st =
  { st with regs = Array.copy st.regs; xmm_clean = Array.copy st.xmm_clean }

let rv_equal a b = Si.equal a.si b.si && a.copy_of = b.copy_of

let cell_equal a b = Si.equal a.cv b.cv && a.cell_copy_of = b.cell_copy_of

let equal a b =
  (try Array.for_all2 rv_equal a.regs b.regs with Invalid_argument _ -> false)
  && a.xmm_clean = b.xmm_clean
  && IntMap.equal cell_equal a.cells b.cells
  && taint_equal a.taint b.taint
  && a.cmp = b.cmp

let join_copy a b = if a = b then a else None

let join a b =
  let regs =
    Array.init 16 (fun i ->
        { si = Si.join a.regs.(i).si b.regs.(i).si;
          copy_of = join_copy a.regs.(i).copy_of b.regs.(i).copy_of })
  in
  let xmm_clean = Array.init 16 (fun i -> a.xmm_clean.(i) && b.xmm_clean.(i)) in
  let cells =
    IntMap.merge
      (fun _ x y ->
        match (x, y) with
        | Some x, Some y ->
            Some { cv = Si.join x.cv y.cv;
                   cell_copy_of = join_copy x.cell_copy_of y.cell_copy_of }
        | _ -> None (* absent = top: join is top *))
      a.cells b.cells
  in
  { regs; xmm_clean; cells; taint = taint_join a.taint b.taint;
    cmp = (if a.cmp = b.cmp then a.cmp else None) }

(* widening point: bounds that grew go to ±∞ (Si.widen); cells must agree
   in both states to survive *)
let widen old nw =
  let regs =
    Array.init 16 (fun i ->
        { si = Si.widen old.regs.(i).si nw.regs.(i).si;
          copy_of = join_copy old.regs.(i).copy_of nw.regs.(i).copy_of })
  in
  let xmm_clean = Array.init 16 (fun i -> old.xmm_clean.(i) && nw.xmm_clean.(i)) in
  let cells =
    IntMap.merge
      (fun _ x y ->
        match (x, y) with
        | Some x, Some y ->
            Some { cv = Si.widen x.cv y.cv;
                   cell_copy_of = join_copy x.cell_copy_of y.cell_copy_of }
        | _ -> None)
      old.cells nw.cells
  in
  { regs; xmm_clean; cells; taint = taint_join old.taint nw.taint;
    cmp = (if old.cmp = nw.cmp then old.cmp else None) }
