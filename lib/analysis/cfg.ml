(* Control-flow graph construction over VX64 programs: basic blocks,
   successor/predecessor edges (including call/return edges), reverse
   postorder for the worklist, and a dominator-based back-edge pass that
   marks loop heads (the widening points of the abstract interpreter).

   The instruction array is expected to be free of instrumentation
   wrappers (see [Program.stripped_insns]); direct branch targets are
   instruction indices, as produced by the assembler.  Returns are
   modeled like the legacy pass: a [Ret] may flow to the fall-through of
   any [Call] site (call-strings of length 0). *)

type block = {
  id : int;
  first : int; (* first instruction index *)
  last : int;  (* last instruction index, inclusive *)
  mutable succs : int list; (* successor block ids *)
  mutable preds : int list;
}

type t = {
  blocks : block array;
  block_of : int array; (* instruction index -> block id *)
  entry : int;          (* entry block id *)
  rpo : int array;      (* reachable block ids in reverse postorder *)
  rpo_index : int array; (* block id -> position in rpo; max_int if unreachable *)
  reachable : bool array;
  loop_head : bool array; (* block is the target of a back edge *)
  n_loop_heads : int;
}

let build (insns : Machine.Isa.insn array) ~entry : t =
  let n = Array.length insns in
  if n = 0 then
    { blocks = [||]; block_of = [||]; entry = 0; rpo = [||]; rpo_index = [||];
      reachable = [||]; loop_head = [||]; n_loop_heads = 0 }
  else begin
    (* ---- leaders ---- *)
    let leader = Array.make n false in
    leader.(entry) <- true;
    leader.(0) <- true;
    let mark i = if i >= 0 && i < n then leader.(i) <- true in
    let ret_targets = ref [] in
    Array.iteri
      (fun i insn ->
        match insn with
        | Machine.Isa.Jmp t -> mark t; mark (i + 1)
        | Machine.Isa.Jcc (_, t) -> mark t; mark (i + 1)
        | Machine.Isa.Call t ->
            mark t;
            mark (i + 1);
            if i + 1 < n then ret_targets := (i + 1) :: !ret_targets
        | Machine.Isa.Ret | Machine.Isa.Halt -> mark (i + 1)
        | _ -> ())
      insns;
    (* ---- blocks ---- *)
    let block_of = Array.make n (-1) in
    let firsts = ref [] in
    for i = n - 1 downto 0 do
      if leader.(i) then firsts := i :: !firsts
    done;
    let firsts = Array.of_list !firsts in
    let nb = Array.length firsts in
    let blocks =
      Array.init nb (fun b ->
          let first = firsts.(b) in
          let last = if b + 1 < nb then firsts.(b + 1) - 1 else n - 1 in
          for i = first to last do
            block_of.(i) <- b
          done;
          { id = b; first; last; succs = []; preds = [] })
    in
    let ret_target_blocks =
      List.sort_uniq compare (List.map (fun i -> block_of.(i)) !ret_targets)
    in
    (* ---- edges ---- *)
    Array.iter
      (fun blk ->
        let i = blk.last in
        let fall = if i + 1 < n then [ block_of.(i + 1) ] else [] in
        let succs =
          match insns.(i) with
          | Machine.Isa.Jmp t -> if t >= 0 && t < n then [ block_of.(t) ] else []
          | Machine.Isa.Jcc (_, t) ->
              (if t >= 0 && t < n then [ block_of.(t) ] else []) @ fall
          | Machine.Isa.Call t -> if t >= 0 && t < n then [ block_of.(t) ] else []
          | Machine.Isa.Ret -> ret_target_blocks
          | Machine.Isa.Halt -> []
          | _ -> fall
        in
        blk.succs <- List.sort_uniq compare succs)
      blocks;
    Array.iter
      (fun blk -> List.iter (fun s -> blocks.(s).preds <- blk.id :: blocks.(s).preds) blk.succs)
      blocks;
    (* ---- reverse postorder over reachable blocks ---- *)
    let entry_b = block_of.(entry) in
    let reachable = Array.make nb false in
    let post = ref [] in
    let rec dfs b =
      if not reachable.(b) then begin
        reachable.(b) <- true;
        List.iter dfs blocks.(b).succs;
        post := b :: !post
      end
    in
    dfs entry_b;
    let rpo = Array.of_list !post in
    let rpo_index = Array.make nb max_int in
    Array.iteri (fun i b -> rpo_index.(b) <- i) rpo;
    (* ---- dominators (Cooper-Harvey-Kennedy) over reachable blocks ---- *)
    let idom = Array.make nb (-1) in
    idom.(entry_b) <- entry_b;
    let intersect a b =
      let a = ref a and b = ref b in
      while !a <> !b do
        while rpo_index.(!a) > rpo_index.(!b) do a := idom.(!a) done;
        while rpo_index.(!b) > rpo_index.(!a) do b := idom.(!b) done
      done;
      !a
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun b ->
          if b <> entry_b then begin
            let new_idom =
              List.fold_left
                (fun acc p ->
                  if not reachable.(p) || idom.(p) = -1 then acc
                  else match acc with None -> Some p | Some a -> Some (intersect a p))
                None blocks.(b).preds
            in
            match new_idom with
            | Some ni when idom.(b) <> ni ->
                idom.(b) <- ni;
                changed := true
            | _ -> ()
          end)
        rpo
    done;
    (* does v dominate u?  walk u's idom chain *)
    let dominates v u =
      let rec walk u =
        if u = v then true else if idom.(u) = u || idom.(u) = -1 then false else walk idom.(u)
      in
      walk u
    in
    let loop_head = Array.make nb false in
    let n_loop_heads = ref 0 in
    Array.iter
      (fun blk ->
        if reachable.(blk.id) then
          List.iter
            (fun s ->
              if reachable.(s) && dominates s blk.id && not loop_head.(s) then begin
                loop_head.(s) <- true;
                incr n_loop_heads
              end)
            blk.succs)
      blocks;
    { blocks; block_of; entry = entry_b; rpo; rpo_index; reachable; loop_head;
      n_loop_heads = !n_loop_heads }
  end
