(* Fpdomain: an abstract domain over IEEE-754 binary64 values (paper
   §4.2 extended to FP facts, in the spirit of FlowFPX birth tracking
   and NSan's shadow checks — see PAPERS.md).

   An abstract value is a *may*-set over the special-value classes

     { NaN, +Inf, -Inf, ±0, subnormal, normal }

   where the normal class additionally carries a sign split (pos/neg)
   and an unbiased-exponent interval [lo, hi] describing every normal
   magnitude the value may take (|v| ∈ [2^lo, 2^(hi+1))).  The flags
   are independent booleans, so join is pointwise disjunction and the
   lattice height is finite once exponent bounds are accelerated onto
   a fixed ladder of magnitude buckets at loop heads (widen).

   Semantics contract: transfer functions model *real* arithmetic with
   a small exponent margin (MARGIN) on every derived magnitude bound.
   This deliberately over-approximates each port's rounding behaviour
   (vanilla binary64, mpfr at any precision, posits, intervals,
   rationals): the engine's soundness oracle (--oracle) re-checks every
   statically proven site dynamically across all ports.

   Provenance: [srcs] carries the set of instruction indices that may
   have produced the value, so the lint report can print a birth path
   for every risk.  It rides along joins (union) and transfers (union
   of operand provenance); the per-site writer adds its own index. *)

module IntSet = Set.Make (Int)

type v = {
  nan : bool; (* may be a NaN (any payload, incl. NaN-boxed sNaNs) *)
  pinf : bool; (* may be +infinity *)
  ninf : bool; (* may be -infinity *)
  zero : bool; (* may be ±0 *)
  sub : bool; (* may be a subnormal (either sign) *)
  pos : bool; (* may be a positive normal *)
  neg : bool; (* may be a negative normal *)
  lo : int; (* min unbiased exponent of any normal it may be *)
  hi : int; (* max unbiased exponent; empty range: lo > hi *)
  srcs : IntSet.t; (* instruction indices that may have produced it *)
}

let emin = -1022
let emax = 1023

(* exponent slack on every derived bound: covers cross-port rounding
   discrepancies (the oracle validates this empirically) *)
let margin = 2

(* empty exponent-range sentinel, absorbing under min/max *)
let r_empty_lo = emax + 1
let r_empty_hi = emin - 1

let bot =
  { nan = false; pinf = false; ninf = false; zero = false; sub = false;
    pos = false; neg = false; lo = r_empty_lo; hi = r_empty_hi;
    srcs = IntSet.empty }

let top =
  { nan = true; pinf = true; ninf = true; zero = true; sub = true;
    pos = true; neg = true; lo = emin; hi = emax; srcs = IntSet.empty }

let is_bot v = v = { bot with srcs = v.srcs } && IntSet.is_empty v.srcs

let has_normal v = v.pos || v.neg
let finite v = v.zero || v.sub || has_normal v
let may_inf v = v.pinf || v.ninf
let may_special v = v.nan || may_inf v

(* ---- normalization ------------------------------------------------------ *)

(* Rebuild the invariants from raw components: exponent mass outside
   [emin, emax] spills into the inf flags (overflow, per result sign)
   and the zero/sub flags (underflow — round-to-nearest may flush all
   the way to zero); a normal flag without a range gets the full range
   (sound safety net, transfers always supply one). *)
let mk ~nan ~pinf ~ninf ~zero ~sub ~pos ~neg ~lo ~hi ~srcs =
  let normal = pos || neg in
  let overflow = normal && hi > emax in
  let underflow = normal && lo < emin in
  let pinf = pinf || (overflow && pos) in
  let ninf = ninf || (overflow && neg) in
  let zero = zero || underflow in
  let sub = sub || underflow in
  let lo = max lo emin and hi = min hi emax in
  (* if clamping the spills leaves no normal exponent, every concrete
     value escaped to inf/zero/sub: a normal result is impossible.
     Clearing pos/neg (rather than widening to the full range) keeps
     mk monotone — a tighter input must never yield a wider output *)
  let clamped_out = normal && lo > hi in
  let pos = pos && not clamped_out and neg = neg && not clamped_out in
  let lo, hi =
    if (not normal) || clamped_out then (r_empty_lo, r_empty_hi)
    else (lo, hi)
  in
  { nan; pinf; ninf; zero; sub; pos; neg; lo; hi; srcs }

let with_src idx v = { v with srcs = IntSet.add idx v.srcs }

(* ---- order, join, widening ---------------------------------------------- *)

let imp a b = (not a) || b

let range_leq a b =
  (a.lo > a.hi) || (b.lo <= a.lo && a.hi <= b.hi)

let leq a b =
  imp a.nan b.nan && imp a.pinf b.pinf && imp a.ninf b.ninf
  && imp a.zero b.zero && imp a.sub b.sub && imp a.pos b.pos
  && imp a.neg b.neg && range_leq a b
  && IntSet.subset a.srcs b.srcs

let equal a b =
  a.nan = b.nan && a.pinf = b.pinf && a.ninf = b.ninf && a.zero = b.zero
  && a.sub = b.sub && a.pos = b.pos && a.neg = b.neg && a.lo = b.lo
  && a.hi = b.hi && IntSet.equal a.srcs b.srcs

let join a b =
  mk ~nan:(a.nan || b.nan) ~pinf:(a.pinf || b.pinf) ~ninf:(a.ninf || b.ninf)
    ~zero:(a.zero || b.zero) ~sub:(a.sub || b.sub) ~pos:(a.pos || b.pos)
    ~neg:(a.neg || b.neg) ~lo:(min a.lo b.lo) ~hi:(max a.hi b.hi)
    ~srcs:(IntSet.union a.srcs b.srcs)

(* magnitude buckets the widening accelerates exponent bounds onto:
   a growing bound jumps to the next ladder rung, so any widening
   chain stabilizes after at most |ladder| steps per bound *)
let ladder =
  [| emin; -512; -256; -128; -64; -32; -16; -8; -4; -2; -1; 0; 1; 2; 4; 8;
     16; 32; 64; 128; 256; 512; emax |]

let bucket_down x =
  let r = ref emin in
  Array.iter (fun b -> if b <= x && b > !r then r := b) ladder;
  !r

let bucket_up x =
  let r = ref emax in
  Array.iter (fun b -> if b >= x && b < !r then r := b) ladder;
  !r

(* widen old new: join, then accelerate any strictly-growing exponent
   bound to its ladder rung.  Flags are booleans (finite height) and
   srcs are bounded by the program size, so iteration terminates. *)
let widen a b =
  let j = join a b in
  let lo = if j.lo < a.lo then bucket_down j.lo else j.lo in
  let hi = if j.hi > a.hi then bucket_up j.hi else j.hi in
  if j.lo > j.hi then j
  else
    mk ~nan:j.nan ~pinf:j.pinf ~ninf:j.ninf ~zero:j.zero ~sub:j.sub
      ~pos:j.pos ~neg:j.neg ~lo ~hi ~srcs:j.srcs

(* ---- constants ----------------------------------------------------------- *)

(* exact classification of one binary64 bit pattern *)
let classify_bits (bits : int64) =
  let e = Int64.to_int (Int64.logand (Int64.shift_right_logical bits 52) 0x7FFL) in
  let m = Int64.logand bits 0xF_FFFF_FFFF_FFFFL in
  let s = Int64.compare bits 0L < 0 in
  if e = 0x7FF then
    if m = 0L then
      if s then { bot with ninf = true } else { bot with pinf = true }
    else { bot with nan = true }
  else if e = 0 then if m = 0L then { bot with zero = true } else { bot with sub = true }
  else
    let ue = e - 1023 in
    if s then { bot with neg = true; lo = ue; hi = ue }
    else { bot with pos = true; lo = ue; hi = ue }

let const f = classify_bits (Int64.bits_of_float f)

(* ---- transfer functions -------------------------------------------------- *)

(* Risks name the special-value *births* an operation may commit given
   its abstract operands, mirroring the dynamic classifier in
   telemetry/numprof.ml: a NaN (resp. Inf) birth is a NaN (Inf) result
   with no NaN (Inf) operand; "sub:" entries are informational (a
   subnormal result from non-subnormal inputs). *)

type builder = {
  mutable b_nan : bool;
  mutable b_pinf : bool;
  mutable b_ninf : bool;
  mutable b_zero : bool;
  mutable b_sub : bool;
  mutable b_pos : bool;
  mutable b_neg : bool;
  mutable b_lo : int;
  mutable b_hi : int;
  mutable b_risks : string list;
}

let builder () =
  { b_nan = false; b_pinf = false; b_ninf = false; b_zero = false;
    b_sub = false; b_pos = false; b_neg = false; b_lo = r_empty_lo;
    b_hi = r_empty_hi; b_risks = [] }

let add_range b lo hi =
  if lo <= hi then begin
    if lo < b.b_lo then b.b_lo <- lo;
    if hi > b.b_hi then b.b_hi <- hi
  end

let risk b tag = if not (List.mem tag b.b_risks) then b.b_risks <- tag :: b.b_risks

let finish b srcs =
  (* record overflow/underflow spills as births before mk clamps *)
  let normal = b.b_pos || b.b_neg in
  if normal && b.b_hi > emax then risk b "inf:overflow";
  if normal && b.b_lo < emin then risk b "sub:underflow";
  ( mk ~nan:b.b_nan ~pinf:b.b_pinf ~ninf:b.b_ninf ~zero:b.b_zero ~sub:b.b_sub
      ~pos:b.b_pos ~neg:b.b_neg ~lo:b.b_lo ~hi:b.b_hi ~srcs,
    List.rev b.b_risks )

let srcs2 a c = IntSet.union a.srcs c.srcs

(* may the value be a nonzero finite of positive / negative sign?
   (subnormal sign is untracked: counts for both) *)
let can_pos_fin v = v.pos || v.sub
let can_neg_fin v = v.neg || v.sub

let fadd a c =
  let b = builder () in
  if a.nan || c.nan then b.b_nan <- true;
  if (a.pinf && c.ninf) || (a.ninf && c.pinf) then begin
    b.b_nan <- true;
    risk b "nan:inf-inf"
  end;
  if a.pinf || c.pinf then b.b_pinf <- true;
  if a.ninf || c.ninf then b.b_ninf <- true;
  (* zero + x = x, x + zero = x *)
  if a.zero then begin
    b.b_zero <- b.b_zero || c.zero;
    b.b_sub <- b.b_sub || c.sub;
    b.b_pos <- b.b_pos || c.pos;
    b.b_neg <- b.b_neg || c.neg;
    add_range b c.lo c.hi
  end;
  if c.zero then begin
    b.b_zero <- b.b_zero || a.zero;
    b.b_sub <- b.b_sub || a.sub;
    b.b_pos <- b.b_pos || a.pos;
    b.b_neg <- b.b_neg || a.neg;
    add_range b a.lo a.hi
  end;
  (* sub ± sub: at most 2^-1021 *)
  if a.sub && (c.sub || c.zero) || (c.sub && a.zero) then begin
    b.b_zero <- true;
    b.b_sub <- true;
    add_range b emin (emin + margin)
  end;
  (* sub ± normal: the normal wobbles by one exponent; near emin the
     result may dip into the subnormals *)
  let sub_normal s n =
    ignore s;
    b.b_pos <- b.b_pos || n.pos;
    b.b_neg <- b.b_neg || n.neg;
    if n.lo <= emin + 1 then b.b_sub <- true;
    add_range b (n.lo - 1 - margin) (n.hi + 1 + margin)
  in
  if a.sub && has_normal c then sub_normal a c;
  if c.sub && has_normal a then sub_normal c a;
  (* normal + normal *)
  if a.pos && c.pos then begin
    b.b_pos <- true;
    (* same sign: |a+b| >= max(|a|,|b|) in the reals; the margin below
       covers a port computing within 2^margin of the real value *)
    add_range b (max a.lo c.lo - margin) (max a.hi c.hi + 1 + margin)
  end;
  if a.neg && c.neg then begin
    b.b_neg <- true;
    add_range b (max a.lo c.lo - margin) (max a.hi c.hi + 1 + margin)
  end;
  if (a.pos && c.neg) || (a.neg && c.pos) then begin
    (* opposite signs: cancellation can reach all the way to ±0 *)
    b.b_pos <- true;
    b.b_neg <- true;
    b.b_zero <- true;
    b.b_sub <- true;
    add_range b emin (max a.hi c.hi + 1 + margin)
  end;
  finish b (srcs2 a c)

let neg_v v =
  { v with pinf = v.ninf; ninf = v.pinf; pos = v.neg; neg = v.pos }

let fsub a c = fadd a (neg_v c)

(* result-sign booleans for multiplicative ops, counting sign-unknown
   classes (sub, zero) for both signs *)
let sign_pos v = v.pos || v.pinf || v.sub || v.zero
let sign_neg v = v.neg || v.ninf || v.sub || v.zero

let fmul a c =
  let b = builder () in
  if a.nan || c.nan then b.b_nan <- true;
  if (a.zero && may_inf c) || (may_inf a && c.zero) then begin
    b.b_nan <- true;
    risk b "nan:zero*inf"
  end;
  let rp = (sign_pos a && sign_pos c) || (sign_neg a && sign_neg c) in
  let rn = (sign_pos a && sign_neg c) || (sign_neg a && sign_pos c) in
  (* inf × nonzero *)
  if (may_inf a && (c.sub || has_normal c || may_inf c))
     || (may_inf c && (a.sub || has_normal a || may_inf a))
  then begin
    if rp then b.b_pinf <- true;
    if rn then b.b_ninf <- true
  end;
  if (a.zero && finite c) || (c.zero && finite a) then b.b_zero <- true;
  if a.sub && c.sub then b.b_zero <- true; (* flushes below 2^-2044 *)
  let sub_normal n =
    (* |sub × normal| < 2^(n.hi - 1021); may underflow to ±0 *)
    b.b_zero <- true;
    b.b_sub <- true;
    if n.hi - 1021 + margin >= emin then begin
      b.b_pos <- true;
      b.b_neg <- true;
      add_range b emin (n.hi - 1021 + margin)
    end
  in
  if a.sub && has_normal c then sub_normal c;
  if c.sub && has_normal a then sub_normal a;
  if has_normal a && has_normal c then begin
    if (a.pos && c.pos) || (a.neg && c.neg) then b.b_pos <- true;
    if (a.pos && c.neg) || (a.neg && c.pos) then b.b_neg <- true;
    add_range b (a.lo + c.lo - 1 - margin) (a.hi + c.hi + 1 + margin)
  end;
  finish b (srcs2 a c)

let fdiv a c =
  let b = builder () in
  if a.nan || c.nan then b.b_nan <- true;
  if a.zero && c.zero then begin
    b.b_nan <- true;
    risk b "nan:zero/zero"
  end;
  if may_inf a && may_inf c then begin
    b.b_nan <- true;
    risk b "nan:inf/inf"
  end;
  let rp = (sign_pos a && sign_pos c) || (sign_neg a && sign_neg c) in
  let rn = (sign_pos a && sign_neg c) || (sign_neg a && sign_pos c) in
  (* nonzero / zero: division by zero *)
  if (a.sub || has_normal a || may_inf a) && c.zero then begin
    if rp then b.b_pinf <- true;
    if rn then b.b_ninf <- true;
    risk b "inf:div-by-zero"
  end;
  (* inf / finite = inf *)
  if may_inf a && finite c then begin
    if rp then b.b_pinf <- true;
    if rn then b.b_ninf <- true
  end;
  (* finite / inf = 0, zero / nonzero = 0 *)
  if (finite a && may_inf c) || (a.zero && (c.sub || has_normal c)) then
    b.b_zero <- true;
  if has_normal a && has_normal c then begin
    if (a.pos && c.pos) || (a.neg && c.neg) then b.b_pos <- true;
    if (a.pos && c.neg) || (a.neg && c.pos) then b.b_neg <- true;
    add_range b (a.lo - c.hi - 1 - margin) (a.hi - c.lo + 1 + margin)
  end;
  (* normal / sub: huge, may overflow to inf *)
  if has_normal a && c.sub then begin
    b.b_pos <- true;
    b.b_neg <- true;
    add_range b (a.lo + 1022 - margin) (a.hi + 1075 + margin)
  end;
  (* sub / normal: tiny, may underflow *)
  if a.sub && has_normal c then begin
    b.b_zero <- true;
    b.b_sub <- true;
    if -1021 - c.lo + margin >= emin then begin
      b.b_pos <- true;
      b.b_neg <- true;
      add_range b emin (-1021 - c.lo + margin)
    end
  end;
  if a.sub && c.sub then begin
    b.b_pos <- true;
    b.b_neg <- true;
    add_range b (-53 - margin) (52 + margin)
  end;
  finish b (srcs2 a c)

let fsqrt a =
  let b = builder () in
  if a.nan then b.b_nan <- true;
  if a.neg || a.ninf then begin
    b.b_nan <- true;
    risk b "nan:sqrt-negative"
  end;
  if a.sub then begin
    (* subnormal sign is untracked: a negative subnormal would birth a
       NaN; a positive one lands near 2^-537 *)
    b.b_nan <- true;
    risk b "nan:sqrt-negative";
    b.b_pos <- true;
    add_range b (-538 - margin) (-511 + margin)
  end;
  if a.pinf then b.b_pinf <- true;
  if a.zero then b.b_zero <- true;
  if a.pos then begin
    b.b_pos <- true;
    add_range b ((a.lo / 2) - 1 - margin) ((a.hi / 2) + 1 + margin)
  end;
  finish b a.srcs

(* minsd/maxsd always return one of their operands (NaN quirks
   included), so the join is a sound superset *)
let fminmax a c = (join a c, [])

(* round-to-integral: integral results only — never subnormal; |x| < 1
   may round to ±0, rounding away can bump the exponent by one *)
let fround a =
  let b = builder () in
  if a.nan then b.b_nan <- true;
  if a.pinf then b.b_pinf <- true;
  if a.ninf then b.b_ninf <- true;
  if a.zero || a.sub || a.lo < 0 then b.b_zero <- true;
  (* results are integral: exponent >= 0 always (|x| < 1 rounds to 0,
     covered above, or to ±1 under a directed mode) *)
  if a.pos then begin
    b.b_pos <- true;
    add_range b (max a.lo 0) (max (a.hi + 1) 0)
  end;
  if a.neg then begin
    b.b_neg <- true;
    add_range b (max a.lo 0) (max (a.hi + 1) 0)
  end;
  if a.sub then begin
    (* directed rounding of a tiny value can produce ±1 *)
    b.b_pos <- true;
    b.b_neg <- true;
    add_range b 0 0
  end;
  finish b a.srcs

(* int -> f64: exact-ish integral magnitudes, never NaN/Inf/subnormal;
   [bits] bounds the significant magnitude (63 for i64, 31 for i32) *)
let of_int ~bits =
  { bot with
    zero = true;
    pos = true;
    neg = true;
    lo = 0;
    hi = bits }

(* f32 -> f64 widening is exact and every f32 (incl. f32 subnormals,
   >= 2^-149) lands in the f64 normal range: the result is never an
   f64 subnormal *)
let of_f32 =
  { top with sub = false; lo = -149; hi = 128 }

(* f64 -> f32 narrowing risk: overflow to f32 Inf when |x| can exceed
   ~2^128, plus f32-subnormal underflow below 2^-126 (informational) *)
let cvt_f2f_risks a =
  let r = ref [] in
  if has_normal a && a.hi + margin >= 128 then r := "inf:f32-overflow" :: !r;
  if a.sub || (has_normal a && a.lo - margin <= -126) then
    r := "sub:f32-underflow" :: !r;
  !r

(* f64 -> int conversion: invalid (NaN result pattern in the integer
   sense) on NaN, Inf, or magnitude beyond the integer width *)
let cvt_f2i_risks ~size a =
  let bits = if size = 8 then 63 else 31 in
  if a.nan || may_inf a || (has_normal a && a.hi + margin >= bits) then
    [ "nan:f2i-out-of-range" ]
  else []

(* ---- libm transfer ------------------------------------------------------- *)

(* |x| may exceed [k] (2^k bound on the magnitude)? *)
let mag_can_exceed a k = a.pinf || a.ninf || (has_normal a && a.hi + margin >= k)

(* exp-family inf-birth threshold: exp overflows near x = 710 < 2^10,
   conservatively flagged from exponent 9 *)
let exp_overflow a = mag_can_exceed a 9

let ext_transfer (fn : Machine.Isa.ext_fn) (a : v) (c : v) : v * string list =
  let b = builder () in
  let prop_nan () = if a.nan then b.b_nan <- true in
  let nan_on_special tag =
    prop_nan ();
    if may_inf a then begin
      b.b_nan <- true;
      risk b tag
    end
  in
  let bounded_sym hi_exp =
    (* result in [-2^(hi_exp+1), 2^(hi_exp+1)], any magnitude below *)
    b.b_zero <- true;
    b.b_sub <- true;
    b.b_pos <- true;
    b.b_neg <- true;
    add_range b emin (hi_exp + margin)
  in
  let exp_like ~signed =
    prop_nan ();
    if a.pinf || exp_overflow a then begin
      b.b_pinf <- true;
      if signed then b.b_ninf <- true;
      (* an Inf *birth* needs a finite argument that overflows — an
         operand that is already Inf propagates without a birth *)
      if has_normal a && a.hi + margin >= 9 then risk b "inf:exp-overflow"
    end;
    if a.ninf || exp_overflow a then begin
      (* large negative argument underflows to ±0 *)
      b.b_zero <- true;
      b.b_sub <- true
    end;
    let bound =
      if has_normal a then
        if a.hi >= 11 then emax + 1 else ((1 lsl max a.hi 0) * 3 / 2) + margin
      else 1 + margin
    in
    b.b_pos <- true;
    if signed then b.b_neg <- true;
    b.b_zero <- b.b_zero || signed;
    b.b_sub <- b.b_sub || signed;
    add_range b (if signed then emin else -bound) bound
  in
  (match fn with
  | Machine.Isa.Sin | Machine.Isa.Cos ->
      nan_on_special "nan:trig-of-inf";
      bounded_sym 0
  | Machine.Isa.Tan ->
      nan_on_special "nan:trig-of-inf";
      bounded_sym emax
  | Machine.Isa.Asin | Machine.Isa.Acos ->
      prop_nan ();
      if may_inf a || a.hi >= 0 then begin
        b.b_nan <- true;
        risk b "nan:domain"
      end;
      if fn = Machine.Isa.Asin then bounded_sym 0
      else begin
        b.b_zero <- true;
        b.b_sub <- true;
        b.b_pos <- true;
        add_range b emin (1 + margin)
      end
  | Machine.Isa.Atan ->
      prop_nan ();
      b.b_zero <- b.b_zero || a.zero;
      b.b_sub <- b.b_sub || a.sub;
      if a.pos || a.pinf then b.b_pos <- true;
      if a.neg || a.ninf then b.b_neg <- true;
      if a.sub then begin
        b.b_pos <- true;
        b.b_neg <- true
      end;
      if has_normal a || may_inf a || a.sub then add_range b emin (0 + margin)
  | Machine.Isa.Atan2 ->
      if a.nan || c.nan then b.b_nan <- true;
      bounded_sym 1
  | Machine.Isa.Exp -> exp_like ~signed:false
  | Machine.Isa.Sinh -> exp_like ~signed:true
  | Machine.Isa.Cosh ->
      exp_like ~signed:false;
      (* cosh >= 1: no zero/sub from finite inputs *)
      b.b_zero <- false;
      b.b_sub <- false;
      add_range b 0 0
  | Machine.Isa.Tanh ->
      prop_nan ();
      bounded_sym 0
  | Machine.Isa.Log | Machine.Isa.Log10 ->
      prop_nan ();
      if a.neg || a.ninf || a.sub then begin
        (* subnormal sign is untracked: may be negative *)
        b.b_nan <- true;
        risk b "nan:log-nonpositive"
      end;
      if a.zero || a.sub then begin
        b.b_ninf <- true;
        risk b "inf:log-zero"
      end;
      if a.pinf then b.b_pinf <- true;
      bounded_sym (if fn = Machine.Isa.Log then 10 else 9)
  | Machine.Isa.Pow ->
      (* x^y covers every class (0^neg = inf, neg^frac = nan, ...):
         conservatively top with the domain risks named *)
      b.b_nan <- true;
      b.b_pinf <- true;
      b.b_ninf <- true;
      b.b_zero <- true;
      b.b_sub <- true;
      b.b_pos <- true;
      b.b_neg <- true;
      add_range b emin emax;
      risk b "nan:pow-domain";
      risk b "inf:pow-overflow";
      ignore c
  | Machine.Isa.Floor | Machine.Isa.Ceil ->
      prop_nan ();
      if a.pinf then b.b_pinf <- true;
      if a.ninf then b.b_ninf <- true;
      if a.zero || a.sub || a.lo < 0 then b.b_zero <- true;
      if a.pos || a.sub then begin
        b.b_pos <- true;
        add_range b 0 (max 0 a.hi + 1)
      end;
      if a.neg || a.sub then begin
        b.b_neg <- true;
        add_range b 0 (max 0 a.hi + 1)
      end
  | Machine.Isa.Fabs ->
      prop_nan ();
      if may_inf a then b.b_pinf <- true;
      b.b_zero <- a.zero;
      b.b_sub <- a.sub;
      if has_normal a then begin
        b.b_pos <- true;
        add_range b a.lo a.hi
      end
  | Machine.Isa.Fmod ->
      if a.nan || c.nan then b.b_nan <- true;
      if may_inf a || c.zero then begin
        b.b_nan <- true;
        risk b "nan:fmod-domain"
      end;
      (* |fmod(a,c)| < |c|, sign follows a; sub signs untracked *)
      b.b_zero <- true;
      b.b_sub <- true;
      b.b_pos <- a.pos || a.sub || a.zero;
      b.b_neg <- a.neg || a.sub || a.zero;
      if b.b_pos || b.b_neg then
        add_range b emin (max c.hi (if c.sub then emin else c.hi) + margin)
  | Machine.Isa.Hypot ->
      if a.nan || c.nan then b.b_nan <- true;
      if may_inf a || may_inf c then b.b_pinf <- true;
      let fin_overflow x = has_normal x && x.hi + margin >= emax - 1 in
      if fin_overflow a || fin_overflow c then begin
        b.b_pinf <- true;
        risk b "inf:overflow"
      end;
      b.b_zero <- a.zero && c.zero;
      b.b_sub <- a.sub || c.sub;
      if a.sub || c.sub || has_normal a || has_normal c then begin
        b.b_pos <- true;
        add_range b (min a.lo c.lo) (max a.hi c.hi + 1 + margin);
        if a.sub || c.sub then add_range b emin (emin + margin)
      end
  | Machine.Isa.Cbrt ->
      prop_nan ();
      if a.pinf then b.b_pinf <- true;
      if a.ninf then b.b_ninf <- true;
      b.b_zero <- a.zero;
      if a.sub then begin
        (* cbrt of a subnormal is a normal near 2^-358..2^-341 *)
        b.b_pos <- true;
        b.b_neg <- true;
        add_range b (-360 - margin) (-340 + margin)
      end;
      if a.pos then b.b_pos <- true;
      if a.neg then b.b_neg <- true;
      if has_normal a then
        add_range b ((a.lo / 3) - 1 - margin) ((a.hi / 3) + 1 + margin)
  | Machine.Isa.Print_f64 | Machine.Isa.Print_i64 | Machine.Isa.Print_str _
  | Machine.Isa.Write_f64 | Machine.Isa.Alloc | Machine.Isa.Exit ->
      (* no FP result *)
      ());
  finish b (srcs2 a c)

(* ---- pretty-printing ----------------------------------------------------- *)

let pp ppf v =
  let tags = ref [] in
  let t c s = if c then tags := s :: !tags in
  t v.nan "nan";
  t v.pinf "+inf";
  t v.ninf "-inf";
  t v.zero "0";
  t v.sub "sub";
  if has_normal v then
    tags :=
      Printf.sprintf "%s2^[%d,%d]"
        (if v.pos && v.neg then "±" else if v.neg then "-" else "+")
        v.lo v.hi
      :: !tags;
  if !tags = [] then Format.fprintf ppf "⊥"
  else Format.fprintf ppf "{%s}" (String.concat "," (List.rev !tags))
