(* Bounded ring buffer of structural telemetry events, timestamped with
   modeled cycles (State.cycles at emission — never wall clock, so a
   trace taken from a recorded run and from its replay are identical).

   Slots are preallocated and mutated in place: steady-state recording
   allocates nothing. When the ring is full the oldest event is
   overwritten (drop-oldest) and a drop counter advances; the exporter
   tolerates the orphaned window edges this can produce.

   The per-emulation and per-patch-check events (T_emulate /
   T_patch_check) are deliberately NOT recorded here: they fire once per
   emulated instruction and would evict everything else from the ring in
   a few thousand cycles of hot loop. The profiler consumes them; the
   ring keeps the structural story (deliveries, trace windows, plan
   traffic, GC, correctness traps). *)

(* Integer kind tags (ring slots are all-int so recording is alloc-free). *)
let k_trap = 0
let k_absorbed = 1
let k_trace_enter = 2
let k_trace_exit = 3
let k_plan_hit = 4
let k_plan_miss = 5
let k_plan_invalidate = 6
let k_gc = 7
let k_correctness = 8
let k_demote = 9
let k_checkpoint = 10
let k_jit_compile = 11
let k_jit_exec = 12
let k_jit_invalidate = 13

type slot = {
  mutable ts : int; (* modeled cycles at emission *)
  mutable kind : int;
  mutable a : int;
  mutable b : int;
  mutable c : int;
  mutable d : int;
}

type t = {
  slots : slot array;
  capacity : int;
  mutable head : int; (* next write position *)
  mutable count : int; (* live slots, <= capacity *)
  mutable dropped : int; (* events overwritten *)
  mutable recorded : int; (* events ever offered (incl. dropped) *)
}

let default_capacity = 65536

let create ?(capacity = default_capacity) () =
  { slots =
      Array.init (max 1 capacity) (fun _ ->
          { ts = 0; kind = 0; a = 0; b = 0; c = 0; d = 0 });
    capacity = max 1 capacity;
    head = 0;
    count = 0;
    dropped = 0;
    recorded = 0 }

let recorded t = t.recorded
let dropped t = t.dropped
let length t = t.count

let push t ~ts ~kind ~a ~b ~c ~d =
  let s = t.slots.(t.head) in
  s.ts <- ts;
  s.kind <- kind;
  s.a <- a;
  s.b <- b;
  s.c <- c;
  s.d <- d;
  t.head <- (t.head + 1) mod t.capacity;
  if t.count < t.capacity then t.count <- t.count + 1
  else t.dropped <- t.dropped + 1;
  t.recorded <- t.recorded + 1

(* Record one probe event. Per-emulation noise (T_emulate,
   T_patch_check) is filtered; everything else lands in the ring. *)
let record t ~ts (ev : Fpvm.Probe.tel) =
  match ev with
  | Fpvm.Probe.T_emulate _ | Fpvm.Probe.T_patch_check _ -> ()
  | Fpvm.Probe.T_trap { index; events; delivery } ->
      push t ~ts ~kind:k_trap ~a:index ~b:events ~c:delivery ~d:0
  | Fpvm.Probe.T_absorbed { index; events } ->
      push t ~ts ~kind:k_absorbed ~a:index ~b:events ~c:0 ~d:0
  | Fpvm.Probe.T_trace_enter { index } ->
      push t ~ts ~kind:k_trace_enter ~a:index ~b:0 ~c:0 ~d:0
  | Fpvm.Probe.T_trace_exit { index; insns; step_cycles; exit_cycles } ->
      push t ~ts ~kind:k_trace_exit ~a:index ~b:insns ~c:step_cycles
        ~d:exit_cycles
  | Fpvm.Probe.T_plan_hit { index } ->
      push t ~ts ~kind:k_plan_hit ~a:index ~b:0 ~c:0 ~d:0
  | Fpvm.Probe.T_plan_miss { index } ->
      push t ~ts ~kind:k_plan_miss ~a:index ~b:0 ~c:0 ~d:0
  | Fpvm.Probe.T_plan_invalidate { index } ->
      push t ~ts ~kind:k_plan_invalidate ~a:index ~b:0 ~c:0 ~d:0
  | Fpvm.Probe.T_gc { full; freed; words; cycles } ->
      push t ~ts ~kind:k_gc ~a:(if full then 1 else 0) ~b:freed ~c:words
        ~d:cycles
  | Fpvm.Probe.T_correctness { index; delivery; handler } ->
      push t ~ts ~kind:k_correctness ~a:index ~b:delivery ~c:handler ~d:0
  | Fpvm.Probe.T_demote { index; count } ->
      push t ~ts ~kind:k_demote ~a:index ~b:count ~c:0 ~d:0
  | Fpvm.Probe.T_checkpoint { seq; bytes } ->
      push t ~ts ~kind:k_checkpoint ~a:seq ~b:bytes ~c:0 ~d:0
  | Fpvm.Probe.T_jit_compile { index; steps; cycles } ->
      push t ~ts ~kind:k_jit_compile ~a:index ~b:steps ~c:cycles ~d:0
  | Fpvm.Probe.T_jit_exec { index; steps; cycles } ->
      (* one slot per block execution — bounded by deliveries + links,
         structural like trace windows, not per-instruction noise *)
      push t ~ts ~kind:k_jit_exec ~a:index ~b:steps ~c:cycles ~d:0
  | Fpvm.Probe.T_jit_invalidate { index } ->
      push t ~ts ~kind:k_jit_invalidate ~a:index ~b:0 ~c:0 ~d:0

(* Oldest-first iteration over live slots. *)
let iter t f =
  let start = (t.head - t.count + t.capacity * 2) mod t.capacity in
  for i = 0 to t.count - 1 do
    f t.slots.((start + i) mod t.capacity)
  done

(* ---- Chrome/Perfetto trace-event export ------------------------------- *)

(* The trace-event format (catapult "JSON Object Format"): an object
   with a [traceEvents] array; each event carries ph (phase), ts
   (microsecond-ish timestamp — we emit modeled cycles), pid/tid, name,
   cat and args. Duration events use ph "X" with [dur]; trace windows
   use matched "B"/"E" pairs; everything else is an instant ("i").
   Perfetto and chrome://tracing both load this shape. *)

let schema_version = 1

let buf_event bb ~first ~ph ~ts ?dur ~name ~cat args =
  if not !first then Buffer.add_string bb ",\n";
  first := false;
  Buffer.add_string bb
    (Printf.sprintf "    {\"ph\":\"%s\",\"ts\":%d,\"pid\":1,\"tid\":1" ph ts);
  (match dur with
  | Some d -> Buffer.add_string bb (Printf.sprintf ",\"dur\":%d" d)
  | None -> ());
  if ph = "i" then Buffer.add_string bb ",\"s\":\"t\"";
  Buffer.add_string bb
    (Printf.sprintf ",\"name\":\"%s\",\"cat\":\"%s\"" name cat);
  (match args with
  | [] -> ()
  | kvs ->
      Buffer.add_string bb ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char bb ',';
          Buffer.add_string bb (Printf.sprintf "\"%s\":%s" k v))
        kvs;
      Buffer.add_char bb '}');
  Buffer.add_char bb '}'

(* [extra] lets a caller append additional events inside the
   [traceEvents] array (e.g. Flowrec's flow arrows) without this module
   depending on the producer: it receives the buffer and the
   first-event flag and must emit complete, comma-prefixed objects the
   way [buf_event] does. *)
let export_json ?extra t bb =
  Buffer.add_string bb
    (Printf.sprintf
       "{\n  \"schema_version\": %d,\n  \"recorded\": %d,\n  \"dropped\": %d,\n  \"traceEvents\": [\n"
       schema_version t.recorded t.dropped);
  let first = ref true in
  (* Trace windows never nest (absorbed faults do not re-deliver and a
     correctness trap is a trace terminator), so depth is 0 or 1. A
     leading "E" whose "B" was overwritten by the ring is skipped. *)
  let depth = ref 0 in
  let i = string_of_int in
  iter t (fun s ->
      let ev = buf_event bb ~first in
      if s.kind = k_trap then
        ev ~ph:"X"
          ~ts:(max 0 (s.ts - s.c))
          ~dur:s.c ~name:"trap" ~cat:"delivery"
          [ ("site", i s.a);
            ("events",
             Printf.sprintf "\"%s\""
               (String.concat "+" (Ieee754.Flags.names s.b))) ]
      else if s.kind = k_absorbed then
        ev ~ph:"i" ~ts:s.ts ~name:"absorbed" ~cat:"trace"
          [ ("site", i s.a);
            ("events",
             Printf.sprintf "\"%s\""
               (String.concat "+" (Ieee754.Flags.names s.b))) ]
      else if s.kind = k_trace_enter then begin
        if !depth = 0 then begin
          incr depth;
          ev ~ph:"B" ~ts:s.ts ~name:"trace" ~cat:"trace" [ ("site", i s.a) ]
        end
      end
      else if s.kind = k_trace_exit then begin
        if !depth > 0 then begin
          decr depth;
          ev ~ph:"E" ~ts:s.ts ~name:"trace" ~cat:"trace"
            [ ("site", i s.a); ("insns", i s.b); ("step_cycles", i s.c);
              ("exit_cycles", i s.d) ]
        end
      end
      else if s.kind = k_plan_hit then
        ev ~ph:"i" ~ts:s.ts ~name:"plan_hit" ~cat:"plan" [ ("site", i s.a) ]
      else if s.kind = k_plan_miss then
        ev ~ph:"i" ~ts:s.ts ~name:"plan_miss" ~cat:"plan" [ ("site", i s.a) ]
      else if s.kind = k_plan_invalidate then
        ev ~ph:"i" ~ts:s.ts ~name:"plan_invalidate" ~cat:"plan"
          [ ("site", i s.a) ]
      else if s.kind = k_gc then
        ev ~ph:"X"
          ~ts:(max 0 (s.ts - s.d))
          ~dur:s.d ~name:(if s.a = 1 then "gc_full" else "gc") ~cat:"gc"
          [ ("freed", i s.b); ("words", i s.c) ]
      else if s.kind = k_correctness then
        ev ~ph:"X"
          ~ts:(max 0 (s.ts - s.b - s.c))
          ~dur:(s.b + s.c) ~name:"correctness" ~cat:"delivery"
          [ ("site", i s.a); ("delivery", i s.b); ("handler", i s.c) ]
      else if s.kind = k_demote then
        ev ~ph:"i" ~ts:s.ts ~name:"demote" ~cat:"delivery"
          [ ("site", i s.a); ("count", i s.b) ]
      else if s.kind = k_checkpoint then
        ev ~ph:"i" ~ts:s.ts ~name:"checkpoint" ~cat:"replay"
          [ ("seq", i s.a); ("bytes", i s.b) ]
      else if s.kind = k_jit_compile then
        ev ~ph:"X"
          ~ts:(max 0 (s.ts - s.c))
          ~dur:s.c ~name:"jit_compile" ~cat:"jit"
          [ ("site", i s.a); ("steps", i s.b) ]
      else if s.kind = k_jit_exec then
        ev ~ph:"X"
          ~ts:(max 0 (s.ts - s.c))
          ~dur:s.c ~name:"jit_exec" ~cat:"jit"
          [ ("site", i s.a); ("steps", i s.b) ]
      else if s.kind = k_jit_invalidate then
        ev ~ph:"i" ~ts:s.ts ~name:"jit_invalidate" ~cat:"jit"
          [ ("site", i s.a) ]);
  (* A window still open at export (halt inside a trace) gets a
     synthetic close so strict viewers don't reject the file. *)
  if !depth > 0 then begin
    let last_ts =
      if t.count = 0 then 0
      else
        t.slots.((t.head - 1 + t.capacity) mod t.capacity).ts
    in
    buf_event bb ~first ~ph:"E" ~ts:last_ts ~name:"trace" ~cat:"trace" []
  end;
  (match extra with None -> () | Some f -> f bb first);
  Buffer.add_string bb "\n  ]\n}\n"

let write_file ?extra t path =
  let bb = Buffer.create 4096 in
  export_json ?extra t bb;
  let oc = open_out path in
  output_string oc (Buffer.contents bb);
  close_out oc
