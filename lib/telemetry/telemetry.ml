(* Facade: build the requested collectors, attach them to an engine's
   probe sink, and fold the (non-deterministic-safe) gauges into Stats
   at the end of the run.

   Determinism contract: telemetry only *reads* machine state — every
   collector consumes the probe payloads (ints and demoted images) and
   writes only its own tables, never the arena, the stats counters the
   fingerprint covers, or machine state. The [tel_events]/[tel_dropped]
   gauges written by {!finalize} are excluded from
   [Stats.fingerprint] and from checkpoints, so a run fingerprints
   identically with telemetry on or off, and a recorded run replays
   identically under instrumentation. *)

(* Re-export the collectors: [telemetry] is a wrapped library, so this
   module is its public face. *)
module Trace = Trace
module Profile = Profile
module Numprof = Numprof
module Flowrec = Flowrec

type t = {
  trace : Trace.t option;
  profile : Profile.t option;
  numprof : Numprof.t option;
  flows : Flowrec.t option;
  mutable events : int; (* total events observed on both channels *)
}

let create ?(trace = false) ?trace_capacity ?(profile = false)
    ?(numprof = false) ?(shadow = false) ?clean ?static_candidates
    ?(flows = false) ?flow_capacity () =
  { trace = (if trace then Some (Trace.create ?capacity:trace_capacity ())
             else None);
    profile = (if profile then Some (Profile.create ()) else None);
    numprof =
      (if numprof || shadow then
         Some (Numprof.create ~shadow ?clean ?static_candidates ())
       else None);
    flows =
      (if flows then Some (Flowrec.create ?capacity:flow_capacity ())
       else None);
    events = 0 }

let enabled t =
  t.trace <> None || t.profile <> None || t.numprof <> None
  || t.flows <> None

(* Install the collectors on a probe sink. Call between [prepare] (or
   checkpoint [restore]) and [resume]. All channels compose: replay
   callbacks live on separate fields, and any callback already on a
   shared channel (another collector, a fleet scheduler) keeps running
   first. *)
let attach t (sink : Fpvm.Probe.sink) =
  if t.trace <> None || t.profile <> None then
    Fpvm.Probe.add_tel sink (fun st ev ->
        t.events <- t.events + 1;
        (match t.trace with
        | Some tr -> Trace.record tr ~ts:st.Machine.State.cycles ev
        | None -> ());
        match t.profile with
        | Some p -> Profile.record p ev
        | None -> ());
  (match t.numprof with
  | None -> ()
  | Some np ->
      Fpvm.Probe.add_num sink (fun _st ev ->
          t.events <- t.events + 1;
          Numprof.record np ev));
  match t.flows with
  | None -> ()
  | Some fr ->
      (* the flight recorder needs the replay-event position to pin
         each birth for the bisector; counting [on_event] composes with
         (and runs after) any recorder already installed *)
      Fpvm.Probe.add_event sink (fun _st _ev -> Flowrec.saw_event fr);
      Fpvm.Probe.add_num sink (fun st ev ->
          t.events <- t.events + 1;
          Flowrec.record fr ~cycles:st.Machine.State.cycles ev)

(* Copy the observation gauges into the run's stats (all excluded from
   the fingerprint and from checkpoints). *)
let finalize t (stats : Fpvm.Stats.t) =
  stats.Fpvm.Stats.tel_events <- t.events;
  stats.Fpvm.Stats.tel_dropped <-
    (match t.trace with Some tr -> Trace.dropped tr | None -> 0);
  (match t.numprof with
  | Some np ->
      stats.Fpvm.Stats.shadow_elided <- np.Numprof.elided;
      stats.Fpvm.Stats.fpa_nan_violations <- np.Numprof.nan_violations
  | None -> ());
  match t.flows with
  | Some fr ->
      let opn, comp, drop = Flowrec.gauges fr in
      stats.Fpvm.Stats.flows_open <- opn;
      stats.Fpvm.Stats.flows_completed <- comp;
      stats.Fpvm.Stats.flows_dropped <- drop;
      let real, spurious = Flowrec.truth_counts fr in
      stats.Fpvm.Stats.flows_real <- real;
      stats.Fpvm.Stats.flows_spurious <- spurious
  | None -> ()
