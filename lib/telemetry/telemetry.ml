(* Facade: build the requested collectors, attach them to an engine's
   probe sink, and fold the (non-deterministic-safe) gauges into Stats
   at the end of the run.

   Determinism contract: telemetry only *reads* machine state — every
   collector consumes the probe payloads (ints and demoted images) and
   writes only its own tables, never the arena, the stats counters the
   fingerprint covers, or machine state. The [tel_events]/[tel_dropped]
   gauges written by {!finalize} are excluded from
   [Stats.fingerprint] and from checkpoints, so a run fingerprints
   identically with telemetry on or off, and a recorded run replays
   identically under instrumentation. *)

(* Re-export the collectors: [telemetry] is a wrapped library, so this
   module is its public face. *)
module Trace = Trace
module Profile = Profile
module Numprof = Numprof

type t = {
  trace : Trace.t option;
  profile : Profile.t option;
  numprof : Numprof.t option;
  mutable events : int; (* total events observed on both channels *)
}

let create ?(trace = false) ?trace_capacity ?(profile = false)
    ?(numprof = false) ?(shadow = false) ?clean ?static_candidates () =
  { trace = (if trace then Some (Trace.create ?capacity:trace_capacity ())
             else None);
    profile = (if profile then Some (Profile.create ()) else None);
    numprof =
      (if numprof || shadow then
         Some (Numprof.create ~shadow ?clean ?static_candidates ())
       else None);
    events = 0 }

let enabled t =
  t.trace <> None || t.profile <> None || t.numprof <> None

(* Install the collectors on a probe sink. Call between [prepare] (or
   checkpoint [restore]) and [resume]; both channels may already carry
   replay callbacks — those live on separate fields and are not
   disturbed. *)
let attach t (sink : Fpvm.Probe.sink) =
  if t.trace <> None || t.profile <> None then
    sink.Fpvm.Probe.on_tel <-
      Some
        (fun st ev ->
          t.events <- t.events + 1;
          (match t.trace with
          | Some tr -> Trace.record tr ~ts:st.Machine.State.cycles ev
          | None -> ());
          match t.profile with
          | Some p -> Profile.record p ev
          | None -> ());
  match t.numprof with
  | None -> ()
  | Some np ->
      sink.Fpvm.Probe.on_num <-
        Some
          (fun _st ev ->
            t.events <- t.events + 1;
            Numprof.record np ev)

(* Copy the observation gauges into the run's stats (both excluded from
   the fingerprint and from checkpoints). *)
let finalize t (stats : Fpvm.Stats.t) =
  stats.Fpvm.Stats.tel_events <- t.events;
  stats.Fpvm.Stats.tel_dropped <-
    (match t.trace with Some tr -> Trace.dropped tr | None -> 0);
  match t.numprof with
  | Some np ->
      stats.Fpvm.Stats.shadow_elided <- np.Numprof.elided;
      stats.Fpvm.Stats.fpa_nan_violations <- np.Numprof.nan_violations
  | None -> ()
