(* Per-site hot-spot attribution.

   Every structural telemetry event carries the exact modeled-cycle
   charge the engine applied, keyed by instruction index, so the
   profile is an exact decomposition: summing every site's buckets
   plus the run-global GC bucket reproduces Stats.total_fpvm_cycles
   with no remainder (the engine's charge sites and the probe's
   emission sites are paired one-to-one).

   Site buckets:
   - delivery     trap round trips + correctness-trap round trips +
                  trace-exit context restores charged at this site
   - emulate      decode + bind + plan + emulate (incl. dispatch) for
                  every emulation whose faulting/served index is here,
                  and interposed math calls at this call site
   - trace        per-instruction residency charges of trace windows
                  headed here
   - jit          trace-JIT charges of windows headed here: superblock
                  compiles, entry guards, per-step charges and
                  compiled-to-compiled link transfers
   - correctness  correctness handler (single-step) work
   - patch        trap-and-patch inline check charges *)

type site = {
  mutable traps : int;
  mutable absorbed : int;
  mutable emulations : int;
  mutable plan_hits : int;
  mutable plan_misses : int;
  mutable plan_invalidations : int;
  mutable temps_elided : int;
  mutable demotions : int;
  mutable corr_traps : int;
  mutable patch_checks : int;
  mutable traces : int;
  mutable trace_insns : int;
  mutable jit_compiles : int;
  mutable jit_execs : int;
  mutable jit_insns : int; (* instructions run compiled, windows headed here *)
  mutable jit_invalidations : int;
  mutable cyc_delivery : int;
  mutable cyc_emulate : int;
  mutable cyc_trace : int;
  mutable cyc_jit : int;
  mutable cyc_correctness : int;
  mutable cyc_patch : int;
}

type t = {
  mutable sites : site option array;
  mutable max_index : int; (* highest index touched, -1 if none *)
  mutable gc_cycles : int; (* run-global: the one untracked-by-site bucket *)
  mutable gc_passes : int;
  mutable checkpoints : int;
}

let create () =
  { sites = Array.make 256 None;
    max_index = -1;
    gc_cycles = 0;
    gc_passes = 0;
    checkpoints = 0 }

let fresh_site () =
  { traps = 0; absorbed = 0; emulations = 0; plan_hits = 0; plan_misses = 0;
    plan_invalidations = 0; temps_elided = 0; demotions = 0; corr_traps = 0;
    patch_checks = 0; traces = 0; trace_insns = 0;
    jit_compiles = 0; jit_execs = 0; jit_insns = 0; jit_invalidations = 0;
    cyc_delivery = 0; cyc_emulate = 0; cyc_trace = 0; cyc_jit = 0;
    cyc_correctness = 0; cyc_patch = 0 }

let site_for t i =
  let i = max 0 i in
  if i >= Array.length t.sites then begin
    let n = ref (Array.length t.sites) in
    while i >= !n do
      n := !n * 2
    done;
    let a = Array.make !n None in
    Array.blit t.sites 0 a 0 (Array.length t.sites);
    t.sites <- a
  end;
  if i > t.max_index then t.max_index <- i;
  match t.sites.(i) with
  | Some s -> s
  | None ->
      let s = fresh_site () in
      t.sites.(i) <- Some s;
      s

let record t (ev : Fpvm.Probe.tel) =
  match ev with
  | Fpvm.Probe.T_trap { index; delivery; _ } ->
      let s = site_for t index in
      s.traps <- s.traps + 1;
      s.cyc_delivery <- s.cyc_delivery + delivery
  | Fpvm.Probe.T_absorbed { index; _ } ->
      let s = site_for t index in
      s.absorbed <- s.absorbed + 1
  | Fpvm.Probe.T_trace_enter _ -> ()
  | Fpvm.Probe.T_trace_exit { index; insns; step_cycles; exit_cycles } ->
      let s = site_for t index in
      s.traces <- s.traces + 1;
      s.trace_insns <- s.trace_insns + insns;
      s.cyc_trace <- s.cyc_trace + step_cycles;
      s.cyc_delivery <- s.cyc_delivery + exit_cycles
  | Fpvm.Probe.T_plan_hit { index } ->
      (site_for t index).plan_hits <- (site_for t index).plan_hits + 1
  | Fpvm.Probe.T_plan_miss { index } ->
      (site_for t index).plan_misses <- (site_for t index).plan_misses + 1
  | Fpvm.Probe.T_plan_invalidate { index } ->
      let s = site_for t index in
      s.plan_invalidations <- s.plan_invalidations + 1
  | Fpvm.Probe.T_emulate { index; cycles; elided } ->
      let s = site_for t index in
      s.emulations <- s.emulations + 1;
      s.cyc_emulate <- s.cyc_emulate + cycles;
      s.temps_elided <- s.temps_elided + elided
  | Fpvm.Probe.T_patch_check { index; cycles } ->
      let s = site_for t index in
      s.patch_checks <- s.patch_checks + 1;
      s.cyc_patch <- s.cyc_patch + cycles
  | Fpvm.Probe.T_jit_compile { index; cycles; _ } ->
      let s = site_for t index in
      s.jit_compiles <- s.jit_compiles + 1;
      s.cyc_jit <- s.cyc_jit + cycles
  | Fpvm.Probe.T_jit_exec { index; steps; cycles } ->
      let s = site_for t index in
      s.jit_execs <- s.jit_execs + 1;
      s.jit_insns <- s.jit_insns + steps;
      s.cyc_jit <- s.cyc_jit + cycles
  | Fpvm.Probe.T_jit_invalidate { index } ->
      let s = site_for t index in
      s.jit_invalidations <- s.jit_invalidations + 1
  | Fpvm.Probe.T_gc { cycles; _ } ->
      t.gc_passes <- t.gc_passes + 1;
      t.gc_cycles <- t.gc_cycles + cycles
  | Fpvm.Probe.T_correctness { index; delivery; handler } ->
      let s = site_for t index in
      s.corr_traps <- s.corr_traps + 1;
      s.cyc_delivery <- s.cyc_delivery + delivery;
      s.cyc_correctness <- s.cyc_correctness + handler
  | Fpvm.Probe.T_demote { index; count } ->
      let s = site_for t index in
      s.demotions <- s.demotions + count
  | Fpvm.Probe.T_checkpoint _ -> t.checkpoints <- t.checkpoints + 1

let site_cycles s =
  s.cyc_delivery + s.cyc_emulate + s.cyc_trace + s.cyc_jit
  + s.cyc_correctness + s.cyc_patch

(* Cycles the profile attributes anywhere: per-site buckets plus the
   run-global GC bucket. Equals [Stats.total_fpvm_cycles] exactly. *)
let tracked_cycles t =
  let sum = ref t.gc_cycles in
  for i = 0 to t.max_index do
    match t.sites.(i) with
    | Some s -> sum := !sum + site_cycles s
    | None -> ()
  done;
  !sum

(* Top [n] sites by attributed cycles, hottest first. *)
let top t n =
  let all = ref [] in
  for i = t.max_index downto 0 do
    match t.sites.(i) with
    | Some s -> if site_cycles s > 0 || s.absorbed > 0 then
        all := (i, s) :: !all
    | None -> ()
  done;
  let sorted =
    List.sort
      (fun (i1, s1) (i2, s2) ->
        match compare (site_cycles s2) (site_cycles s1) with
        | 0 -> compare i1 i2
        | c -> c)
      !all
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: tl -> x :: take (k - 1) tl
  in
  take n sorted

let schema_version = 1

let report_text ?(n = 10) t (stats : Fpvm.Stats.t) bb =
  let total = Fpvm.Stats.total_fpvm_cycles stats in
  let tracked = tracked_cycles t in
  Buffer.add_string bb
    (Printf.sprintf
       "hot sites (top %d by attributed cycles; total fpvm %d, attributed %d + gc %d, remainder %d)\n"
       n total (tracked - t.gc_cycles) t.gc_cycles (total - tracked));
  Buffer.add_string bb
    "  site     cycles  %fpvm    traps absorbed     emul plan h/m  deliv_cyc    emu_cyc  trace_cyc    jit_cyc corr patch\n";
  List.iter
    (fun (i, s) ->
      Buffer.add_string bb
        (Printf.sprintf
           "  %4d %10d %5.1f%% %8d %8d %8d %4d/%-4d %10d %10d %10d %10d %4d %5d\n"
           i (site_cycles s)
           (if total = 0 then 0.0
            else 100.0 *. float_of_int (site_cycles s) /. float_of_int total)
           s.traps s.absorbed s.emulations s.plan_hits s.plan_misses
           s.cyc_delivery s.cyc_emulate s.cyc_trace s.cyc_jit s.corr_traps
           s.patch_checks))
    (top t n)

let report_json ?(n = 10) t (stats : Fpvm.Stats.t) bb =
  let total = Fpvm.Stats.total_fpvm_cycles stats in
  Buffer.add_string bb
    (Printf.sprintf
       "{\n  \"schema_version\": %d,\n  \"total_fpvm_cycles\": %d,\n  \"tracked_cycles\": %d,\n  \"gc_cycles\": %d,\n  \"gc_passes\": %d,\n  \"checkpoints\": %d,\n  \"sites\": [\n"
       schema_version total (tracked_cycles t) t.gc_cycles t.gc_passes
       t.checkpoints);
  List.iteri
    (fun k (i, s) ->
      if k > 0 then Buffer.add_string bb ",\n";
      Buffer.add_string bb
        (Printf.sprintf
           "    {\"site\":%d,\"cycles\":%d,\"traps\":%d,\"absorbed\":%d,\"emulations\":%d,\"plan_hits\":%d,\"plan_misses\":%d,\"plan_invalidations\":%d,\"temps_elided\":%d,\"demotions\":%d,\"corr_traps\":%d,\"patch_checks\":%d,\"traces\":%d,\"trace_insns\":%d,\"jit_compiles\":%d,\"jit_execs\":%d,\"jit_insns\":%d,\"jit_invalidations\":%d,\"cyc_delivery\":%d,\"cyc_emulate\":%d,\"cyc_trace\":%d,\"cyc_jit\":%d,\"cyc_correctness\":%d,\"cyc_patch\":%d}"
           i (site_cycles s) s.traps s.absorbed s.emulations s.plan_hits
           s.plan_misses s.plan_invalidations s.temps_elided s.demotions
           s.corr_traps s.patch_checks s.traces s.trace_insns s.jit_compiles
           s.jit_execs s.jit_insns s.jit_invalidations s.cyc_delivery
           s.cyc_emulate s.cyc_trace s.cyc_jit s.cyc_correctness s.cyc_patch))
    (top t n);
  Buffer.add_string bb "\n  ]\n}\n"
