(* FP-exception flight recorder (FlowFPX-style).

   numprof counts NaN/Inf births, propagations and kills *per site*;
   this module records the *flows* that connect them: each birth (a
   special result computed from clean operands) opens a flow, every
   downstream op whose special result inherits a special operand
   extends it, and the op or observation boundary where the special
   value disappears (or is printed/serialized/compared) closes it.
   The chain links are the diagnostic FlowFPX argues debugging needs —
   "where was this NaN born, what dragged it here, where did the
   program last see it" — and the recorded birth-event index is what
   wires the report into the replay bisector.

   Mechanics:

   - Flow identity rides the same keys the numprof shadow table uses:
     the result's machine word (a NaN-box pattern, or the raw binary64
     word for unboxed values). The table is self-healing in the same
     way — each entry remembers the port's demoted image at store
     time, and a lookup whose current image no longer matches falls
     back to "no flow" instead of a stale one. [N_rebox] events move
     entries when the JIT promotes a scratch temp to a durable box,
     and an [S_demote] sink re-keys the flow under the raw demoted
     word so correctness demotions don't break the chain.

   - Chain links land in a preallocated all-int drop-oldest ring.
     When the ring wraps, the overwritten link's *entire flow* is
     marked dropped: a chain is either reported whole or not at all,
     never with a silently missing middle. Flow metadata (birth site,
     kill site, link/prop counts, cycle span) lives outside the ring
     and survives a drop — only the per-link detail is lost.

   - The birth-event index: the engine emits the replay-channel event
     for a delivery/absorption *before* emulating (see
     Engine.absorb_event), so the op that births a special executes
     "inside" the most recently emitted replay event. Counting
     [on_event] occurrences therefore pins each birth to the replay
     log position the bisector can land on ([N_ext] births belong to
     the [Ext_call] event emitted right *after* the handler returns,
     so they take the next index instead).

   Pure observation: the recorder reads probe payloads only, charges
   no modeled cycles, and never touches machine state — a run must
   fingerprint identically with it on or off. *)

module Isa = Machine.Isa

let exp_mask = 0x7ff0000000000000L
let abs_mask = 0x7fffffffffffffffL

let is_nan bits =
  Int64.logand bits exp_mask = exp_mask
  && Int64.logand bits 0x000fffffffffffffL <> 0L

let is_inf bits = Int64.logand bits abs_mask = exp_mask

(* NaN or Inf: exponent field saturated. *)
let is_special bits = Int64.logand bits exp_mask = exp_mask

(* ---- op coding (ring slots are all-int) -------------------------------- *)

let op_code (op : Isa.fp_op) =
  match op with
  | Isa.FADD -> 0
  | Isa.FSUB -> 1
  | Isa.FMUL -> 2
  | Isa.FDIV -> 3
  | Isa.FMIN -> 4
  | Isa.FMAX -> 5
  | Isa.FSQRT -> 6

let ext_code (fn : Isa.ext_fn) =
  match fn with
  | Isa.Sin -> 16 | Isa.Cos -> 17 | Isa.Tan -> 18 | Isa.Asin -> 19
  | Isa.Acos -> 20 | Isa.Atan -> 21 | Isa.Atan2 -> 22 | Isa.Exp -> 23
  | Isa.Log -> 24 | Isa.Log10 -> 25 | Isa.Pow -> 26 | Isa.Floor -> 27
  | Isa.Ceil -> 28 | Isa.Fabs -> 29 | Isa.Fmod -> 30 | Isa.Hypot -> 31
  | Isa.Cbrt -> 32 | Isa.Sinh -> 33 | Isa.Cosh -> 34 | Isa.Tanh -> 35
  | _ -> 15

let op_name code =
  match code with
  | 0 -> "add" | 1 -> "sub" | 2 -> "mul" | 3 -> "div" | 4 -> "min"
  | 5 -> "max" | 6 -> "sqrt"
  | 16 -> "sin" | 17 -> "cos" | 18 -> "tan" | 19 -> "asin" | 20 -> "acos"
  | 21 -> "atan" | 22 -> "atan2" | 23 -> "exp" | 24 -> "log"
  | 25 -> "log10" | 26 -> "pow" | 27 -> "floor" | 28 -> "ceil"
  | 29 -> "fabs" | 30 -> "fmod" | 31 -> "hypot" | 32 -> "cbrt"
  | 33 -> "sinh" | 34 -> "cosh" | 35 -> "tanh"
  | 40 -> "compare" | 41 -> "print" | 42 -> "serialize" | 43 -> "demote"
  | _ -> "ext"

(* Sink kinds, both as ring op codes (40+) and as kill kinds. *)
let sink_code (k : Fpvm.Probe.sink_kind) =
  match k with
  | Fpvm.Probe.S_compare -> 40
  | Fpvm.Probe.S_print -> 41
  | Fpvm.Probe.S_serialize -> 42
  | Fpvm.Probe.S_demote -> 43

let kill_kind_name k =
  match k with
  | 0 -> "op" (* special operand consumed, clean result *)
  | 40 -> "compare"
  | 41 -> "print"
  | 42 -> "serialize"
  | _ -> "open"

(* ---- flows -------------------------------------------------------------- *)

type flow = {
  fl_id : int;
  fl_is_nan : bool; (* NaN at birth (false: Inf) *)
  fl_birth_site : int;
  fl_birth_cycle : int;
  fl_birth_event : int; (* replay-log event index of the birth *)
  fl_birth_op : int;
  mutable fl_links : int; (* chain links recorded (incl. birth) *)
  mutable fl_props : int;
  mutable fl_last_site : int;
  mutable fl_last_cycle : int;
  mutable fl_kill_site : int; (* -1 while open *)
  mutable fl_kill_kind : int; (* op code family above; -1 open *)
  mutable fl_dropped : bool; (* a chain link was overwritten *)
  mutable fl_real : int; (* -1 unlabeled / 0 spurious / 1 real *)
}

(* Ring slot: one chain link, (cycle, kind, site, flow, op, operand
   flow ids). Kinds: 0 birth, 1 prop, 2 kill, 3 sink. *)
type slot = {
  mutable s_cyc : int;
  mutable s_kind : int;
  mutable s_site : int;
  mutable s_flow : int;
  mutable s_op : int;
  mutable s_fa : int;
  mutable s_fb : int;
}

type t = {
  tbl : (int64, int64 * int) Hashtbl.t;
      (* machine word -> (demoted image at store time, flow id) *)
  mutable flows : flow array;
  mutable n_flows : int;
  ring : slot array;
  capacity : int;
  mutable head : int;
  mutable count : int;
  mutable links_dropped : int;
  mutable events_seen : int; (* replay-channel events counted so far *)
}

let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  { tbl = Hashtbl.create 1024;
    flows = [||];
    n_flows = 0;
    ring =
      Array.init (max 8 capacity) (fun _ ->
          { s_cyc = 0; s_kind = -1; s_site = 0; s_flow = -1; s_op = 0;
            s_fa = -1; s_fb = -1 });
    capacity = max 8 capacity;
    head = 0;
    count = 0;
    links_dropped = 0;
    events_seen = 0 }

(* Count one replay-channel event (installed on [on_event] by
   Telemetry.attach); see the birth-event indexing note above. *)
let saw_event t = t.events_seen <- t.events_seen + 1

let new_flow t ~is_nan ~site ~cyc ~event ~op =
  let id = t.n_flows in
  if id >= Array.length t.flows then begin
    let n = max 64 (2 * Array.length t.flows) in
    let a =
      Array.make n
        { fl_id = -1; fl_is_nan = false; fl_birth_site = -1;
          fl_birth_cycle = 0; fl_birth_event = -1; fl_birth_op = 0;
          fl_links = 0; fl_props = 0; fl_last_site = -1; fl_last_cycle = 0;
          fl_kill_site = -1; fl_kill_kind = -1; fl_dropped = false;
          fl_real = -1 }
    in
    Array.blit t.flows 0 a 0 t.n_flows;
    t.flows <- a
  end;
  let f =
    { fl_id = id; fl_is_nan = is_nan; fl_birth_site = site;
      fl_birth_cycle = cyc; fl_birth_event = event; fl_birth_op = op;
      fl_links = 0; fl_props = 0; fl_last_site = site; fl_last_cycle = cyc;
      fl_kill_site = -1; fl_kill_kind = -1; fl_dropped = false;
      fl_real = -1 }
  in
  t.flows.(id) <- f;
  t.n_flows <- t.n_flows + 1;
  f

let push t ~cyc ~kind ~site ~flow ~op ~fa ~fb =
  let s = t.ring.(t.head) in
  if t.count = t.capacity then begin
    (* drop-oldest: the overwritten link's whole chain goes with it,
       so every reported chain is intact *)
    (if s.s_flow >= 0 && s.s_flow < t.n_flows then
       t.flows.(s.s_flow).fl_dropped <- true);
    t.links_dropped <- t.links_dropped + 1
  end
  else t.count <- t.count + 1;
  s.s_cyc <- cyc;
  s.s_kind <- kind;
  s.s_site <- site;
  s.s_flow <- flow;
  s.s_op <- op;
  s.s_fa <- fa;
  s.s_fb <- fb;
  t.head <- (t.head + 1) mod t.capacity;
  let f = t.flows.(flow) in
  f.fl_links <- f.fl_links + 1;
  f.fl_last_site <- site;
  f.fl_last_cycle <- cyc

(* The flow currently carried by machine word [bits], validated against
   the port's current demoted [image] (self-healing, like numprof's
   shadow table). *)
let flow_of t bits image =
  match Hashtbl.find_opt t.tbl bits with
  | Some (img, fid) when Int64.equal img image -> fid
  | _ -> -1

let record_arith t ~cyc ~event ~index ~op ~unary ~a_bits ~b_bits ~r_bits ~a
    ~b ~r =
  let a_sp = is_special a in
  let b_sp = (not unary) && is_special b in
  let r_sp = is_special r in
  if not (a_sp || b_sp || r_sp) then begin
    (* clean op: if the result reuses a word a dead special once held,
       retire the stale entry *)
    if Hashtbl.mem t.tbl r_bits then Hashtbl.remove t.tbl r_bits
  end
  else begin
    let fa = if a_sp then flow_of t a_bits a else -1 in
    let fb = if b_sp then flow_of t b_bits b else -1 in
    if r_sp then begin
      let fid =
        if a_sp || b_sp then begin
          let inherited = if fa >= 0 then fa else fb in
          if inherited >= 0 then begin
            let f = t.flows.(inherited) in
            f.fl_props <- f.fl_props + 1;
            push t ~cyc ~kind:1 ~site:index ~flow:inherited ~op ~fa ~fb;
            inherited
          end
          else begin
            (* a special operand whose flow we no longer know (healed
               entry, or a producer on_num does not model): first
               observation opens a flow here *)
            let f =
              new_flow t ~is_nan:(is_nan r) ~site:index ~cyc ~event ~op
            in
            push t ~cyc ~kind:0 ~site:index ~flow:f.fl_id ~op ~fa ~fb;
            f.fl_id
          end
        end
        else begin
          (* birth: special result from clean operands *)
          let f =
            new_flow t ~is_nan:(is_nan r) ~site:index ~cyc ~event ~op
          in
          push t ~cyc ~kind:0 ~site:index ~flow:f.fl_id ~op ~fa:(-1)
            ~fb:(-1);
          f.fl_id
        end
      in
      Hashtbl.replace t.tbl r_bits (r, fid)
    end
    else begin
      (* special operand, clean result: the flow is killed here *)
      if Hashtbl.mem t.tbl r_bits then Hashtbl.remove t.tbl r_bits;
      let kill fid =
        if fid >= 0 then begin
          let f = t.flows.(fid) in
          push t ~cyc ~kind:2 ~site:index ~flow:fid ~op ~fa ~fb;
          if f.fl_kill_site < 0 then begin
            f.fl_kill_site <- index;
            f.fl_kill_kind <- 0
          end
        end
      in
      kill fa;
      if fb >= 0 && fb <> fa then kill fb
    end
  end

let record_sink t ~cyc ~index ~kind ~bits ~f64 =
  if is_special f64 then begin
    let fid = flow_of t bits f64 in
    if fid >= 0 then begin
      let f = t.flows.(fid) in
      let code = sink_code kind in
      push t ~cyc ~kind:3 ~site:index ~flow:fid ~op:code ~fa:fid ~fb:(-1);
      match kind with
      | Fpvm.Probe.S_demote ->
          (* the value survives demotion as a raw binary64 word: follow
             it to its new key so the chain continues *)
          Hashtbl.replace t.tbl f64 (f64, fid)
      | _ ->
          if f.fl_kill_site < 0 then begin
            f.fl_kill_site <- index;
            f.fl_kill_kind <- code
          end
    end
  end

let record t ~cycles (ev : Fpvm.Probe.num) =
  match ev with
  | Fpvm.Probe.N_op { index; op; a_bits; b_bits; r_bits; a; b; r } ->
      record_arith t ~cyc:cycles
        ~event:(max 0 (t.events_seen - 1))
        ~index ~op:(op_code op)
        ~unary:(op = Isa.FSQRT)
        ~a_bits ~b_bits ~r_bits ~a ~b ~r
  | Fpvm.Probe.N_ext { index; fn; a_bits; b_bits; r_bits; a; b; r } ->
      let unary =
        match fn with
        | Isa.Atan2 | Isa.Pow | Isa.Fmod | Isa.Hypot -> false
        | _ -> true
      in
      (* the Ext_call replay event is emitted after the handler
         returns, so an ext birth belongs to the *next* event index *)
      record_arith t ~cyc:cycles ~event:t.events_seen ~index
        ~op:(ext_code fn) ~unary ~a_bits ~b_bits ~r_bits ~a ~b ~r
  | Fpvm.Probe.N_sink { index; kind; bits; f64 } ->
      record_sink t ~cyc:cycles ~index ~kind ~bits ~f64
  | Fpvm.Probe.N_rebox { old_bits; new_bits; _ } -> (
      (* scratch temp promoted to a durable arena box: the flow follows
         the value to its new key *)
      match Hashtbl.find_opt t.tbl old_bits with
      | Some pair ->
          Hashtbl.remove t.tbl old_bits;
          Hashtbl.replace t.tbl new_bits pair
      | None -> ())

(* ---- run-end accounting ------------------------------------------------- *)

(* (open, completed, dropped): dropped flows are counted once and
   excluded from the other two, so the three partition all flows. *)
let gauges t =
  let opn = ref 0 and comp = ref 0 and drop = ref 0 in
  for i = 0 to t.n_flows - 1 do
    let f = t.flows.(i) in
    if f.fl_dropped then incr drop
    else if f.fl_kill_site >= 0 then incr comp
    else incr opn
  done;
  (!opn, !comp, !drop)

(* (real, spurious) among labeled flows. *)
let truth_counts t =
  let r = ref 0 and s = ref 0 in
  for i = 0 to t.n_flows - 1 do
    match t.flows.(i).fl_real with
    | 1 -> incr r
    | 0 -> incr s
    | _ -> ()
  done;
  (!r, !s)

let n_flows t = t.n_flows
let links_dropped t = t.links_dropped

(* Distinct sites where any flow (dropped or not) was born — ground
   truth only needs "did the other port except here at all", and flow
   metadata survives ring drops. *)
let birth_sites t =
  let h = Hashtbl.create 16 in
  for i = 0 to t.n_flows - 1 do
    Hashtbl.replace h t.flows.(i).fl_birth_site ()
  done;
  h

(* Label every flow against an interval-port ground truth: [real site]
   answers "did the interval run birth a special (or produce an
   unbounded enclosure, which demotes to a special) at this site". *)
let label_truth t real_site =
  for i = 0 to t.n_flows - 1 do
    let f = t.flows.(i) in
    f.fl_real <- (if real_site f.fl_birth_site then 1 else 0)
  done

(* Surviving (undropped) flows in birth order, for the chain-link
   consumers (Perfetto export, link listings). *)
let surviving t =
  let out = ref [] in
  for i = t.n_flows - 1 downto 0 do
    let f = t.flows.(i) in
    if not f.fl_dropped then out := f :: !out
  done;
  !out

(* Every flow in birth order. Flow metadata (birth/kill site, link and
   prop counts, cycle span) is exact even when the flow's ring links
   were overwritten, so the coach reports all of them and only flags
   the chains whose per-link detail is gone. *)
let all_flows t =
  let out = ref [] in
  for i = t.n_flows - 1 downto 0 do
    out := t.flows.(i) :: !out
  done;
  !out

(* Oldest-first iteration over live ring slots. *)
let iter_links t fn =
  let start = (t.head - t.count + (2 * t.capacity)) mod t.capacity in
  for i = 0 to t.count - 1 do
    let s = t.ring.((start + i) mod t.capacity) in
    if s.s_kind >= 0 then fn s
  done

(* The chain links of one surviving flow, oldest first. *)
let links_of t fid =
  let out = ref [] in
  iter_links t (fun s -> if s.s_flow = fid then out := s :: !out);
  List.rev !out

(* ---- Perfetto export ---------------------------------------------------- *)

(* Appended inside the trace's [traceEvents] array (via the exporter's
   [?extra] hook): an instant slice per chain link plus the
   s/t/f flow-arrow triple Perfetto draws between them, one arrow id
   per flow. Dropped flows are omitted — chains export whole or not at
   all, matching the report. *)
let export_flows t bb (first : bool ref) =
  (* per-flow live-link counts, so the last link can close the arrow *)
  let totals = Hashtbl.create 64 in
  iter_links t (fun s ->
      if s.s_flow >= 0 && not t.flows.(s.s_flow).fl_dropped then
        Hashtbl.replace totals s.s_flow
          (1 + try Hashtbl.find totals s.s_flow with Not_found -> 0));
  let seen = Hashtbl.create 64 in
  let emit str =
    if not !first then Buffer.add_string bb ",\n";
    first := false;
    Buffer.add_string bb str
  in
  iter_links t (fun s ->
      if s.s_flow >= 0 && Hashtbl.mem totals s.s_flow then begin
        let k = 1 + try Hashtbl.find seen s.s_flow with Not_found -> 0 in
        Hashtbl.replace seen s.s_flow k;
        let total = Hashtbl.find totals s.s_flow in
        let name =
          match s.s_kind with
          | 0 -> "flow_birth"
          | 1 -> "flow_prop"
          | 2 -> "flow_kill"
          | _ -> "flow_sink"
        in
        emit
          (Printf.sprintf
             "    {\"ph\":\"i\",\"ts\":%d,\"pid\":1,\"tid\":1,\"s\":\"t\",\"name\":\"%s\",\"cat\":\"flow\",\"args\":{\"flow\":%d,\"site\":%d,\"op\":\"%s\",\"fa\":%d,\"fb\":%d}}"
             s.s_cyc name s.s_flow s.s_site (op_name s.s_op) s.s_fa s.s_fb);
        (* the arrow: s at the first link, t in the middle, f at the
           last (bp:e binds the terminator to the enclosing instant) *)
        let ph, bp =
          if total = 1 then ("s", "") (* single-link chain: start only *)
          else if k = 1 then ("s", "")
          else if k = total then ("f", ",\"bp\":\"e\"")
          else ("t", "")
        in
        emit
          (Printf.sprintf
             "    {\"ph\":\"%s\",\"id\":%d,\"ts\":%d,\"pid\":1,\"tid\":1,\"name\":\"nanflow\",\"cat\":\"flow\"%s}"
             ph s.s_flow s.s_cyc bp)
      end)

(* ---- text report --------------------------------------------------------- *)

let flow_kind f = if f.fl_is_nan then "NaN" else "Inf"

let pp_flow_line bb f =
  Buffer.add_string bb
    (Printf.sprintf
       "flow %d [%s] birth site %d (op %s, cycle %d, event %d) -> %s links=%d props=%d span=%d cycles\n"
       f.fl_id (flow_kind f) f.fl_birth_site (op_name f.fl_birth_op)
       f.fl_birth_cycle f.fl_birth_event
       (if f.fl_kill_site >= 0 then
          Printf.sprintf "%s at site %d" (kill_kind_name f.fl_kill_kind)
            f.fl_kill_site
        else "still open")
       f.fl_links f.fl_props
       (f.fl_last_cycle - f.fl_birth_cycle))
