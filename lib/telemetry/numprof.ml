(* Numerical-quality telemetry (FlowFPX / NSan style).

   Two layers, both fed by the engine's [on_num] probe channel:

   1. Exception-flow tracking: per site, count NaN and Inf *births*
      (the result is NaN/Inf but no operand was), *propagations* (the
      result is and some operand was) and *kills* (an operand was but
      the result is not). All classification happens on the arith
      port's demoted binary64 images, so it works identically for
      every alternative system.

   2. Shadow-value divergence (--shadow-check): alongside the active
      port, re-run every operation in vanilla binary64 (the same
      Soft64 + host-libm semantics as {!Fpvm.Alt_vanilla}) over shadow
      operands, keyed by the result's box pattern. At every demotion
      boundary sink (compare, print, serialize, f2i/f2f narrowing,
      correctness demotion) compare what the port produced against the
      shadow and histogram the relative error (log2 buckets). Under
      the vanilla port the shadow computation is the port computation,
      so the reported error is exactly zero — the built-in self-test.

      The shadow table is self-healing: each entry remembers the
      port's demoted image at store time, and a lookup whose current
      image no longer matches (the arena cell or scratch slot was
      recycled and the box pattern reused) falls back to the image
      itself instead of a stale shadow. Producers the table does not
      model (i2f, rounds, f32 promotions) have no entry and likewise
      fall back, so divergence resets rather than compounds. *)

module V = Fpvm.Alt_vanilla
module Isa = Machine.Isa

let exp_mask = 0x7ff0000000000000L
let abs_mask = 0x7fffffffffffffffL

let is_nan bits =
  Int64.logand bits exp_mask = exp_mask
  && Int64.logand bits 0x000fffffffffffffL <> 0L

let is_inf bits = Int64.logand bits abs_mask = exp_mask

(* ---- vanilla expected-value model ------------------------------------- *)

let op_expected (op : Isa.fp_op) a b =
  match op with
  | Isa.FADD -> V.add a b
  | Isa.FSUB -> V.sub a b
  | Isa.FMUL -> V.mul a b
  | Isa.FDIV -> V.div a b
  | Isa.FMIN -> V.min_v a b
  | Isa.FMAX -> V.max_v a b
  | Isa.FSQRT -> V.sqrt b

(* Mirrors the engine's [math_ext] compositions, instantiated with the
   vanilla system: host libm for the primitives, Soft64 for the
   arithmetic glue. *)
let ext_expected (fn : Isa.ext_fn) a b =
  match fn with
  | Isa.Sin -> Some (V.sin a)
  | Isa.Cos -> Some (V.cos a)
  | Isa.Tan -> Some (V.tan a)
  | Isa.Asin -> Some (V.asin a)
  | Isa.Acos -> Some (V.acos a)
  | Isa.Atan -> Some (V.atan a)
  | Isa.Exp -> Some (V.exp a)
  | Isa.Log -> Some (V.log a)
  | Isa.Log10 -> Some (V.log10 a)
  | Isa.Floor -> Some (V.floor_v a)
  | Isa.Ceil -> Some (V.ceil_v a)
  | Isa.Fabs -> Some (V.abs a)
  | Isa.Cbrt ->
      let third = Int64.bits_of_float (1.0 /. 3.0) in
      Some
        (match V.cmp_quiet a 0L with
        | Ieee754.Softfp.Cmp_lt -> V.neg (V.pow (V.neg a) third)
        | _ -> V.pow a third)
  | Isa.Sinh | Isa.Cosh | Isa.Tanh ->
      let e = V.exp a and en = V.exp (V.neg a) in
      let two = Int64.bits_of_float 2.0 in
      Some
        (match fn with
        | Isa.Sinh -> V.div (V.sub e en) two
        | Isa.Cosh -> V.div (V.add e en) two
        | _ -> V.div (V.sub e en) (V.add e en))
  | Isa.Atan2 -> Some (V.atan2 a b)
  | Isa.Pow -> Some (V.pow a b)
  | Isa.Fmod -> Some (V.fmod a b)
  | Isa.Hypot -> Some (V.hypot a b)
  | Isa.Print_f64 | Isa.Print_i64 | Isa.Print_str _ | Isa.Write_f64
  | Isa.Alloc | Isa.Exit -> None

(* ---- per-site exception-flow table ------------------------------------ *)

type site = {
  mutable ops : int;
  mutable nan_births : int;
  mutable nan_props : int;
  mutable nan_kills : int;
  mutable inf_births : int;
  mutable inf_props : int;
  mutable inf_kills : int;
  mutable sinks : int;
  mutable max_err : float;
}

let fresh_site () =
  { ops = 0; nan_births = 0; nan_props = 0; nan_kills = 0; inf_births = 0;
    inf_props = 0; inf_kills = 0; sinks = 0; max_err = 0.0 }

(* log2-bucketed relative-error histogram: bucket [k] counts errors in
   [2^(k-64), 2^(k-63)) for k in 0..64 (i.e. floor(log2 err) clamped to
   [-64, 0]; errors >= 1, including infinite divergence, land in the
   last bucket). Exact-zero comparisons are counted separately. *)
let n_buckets = 65

type t = {
  shadow_mode : bool;
  shadow : (int64, int64 * int64) Hashtbl.t;
      (* box pattern -> (port image at store time, vanilla shadow) *)
  clean : (int -> bool) option;
      (* static birth-freedom facts (Analysis.Fpa): at a clean site the
         full per-op bookkeeping (site table, classification, shadow
         store) is elided — only a cheap birth-violation check runs,
         which doubles as the static-vs-dynamic soundness oracle. None
         (the default) = classic numprof, nothing elided. *)
  static_candidates : (int * string list) list;
      (* statically-flagged birth-candidate sites (index, risk tags)
         seeding the flow-chain report: where NaN/Inf *could* be born
         even if this run never witnessed it *)
  mutable sites : site option array;
  mutable max_index : int;
  mutable elided : int; (* op records skipped at proven-clean sites *)
  mutable nan_violations : int;
      (* dynamic NaN/Inf births at proven birth-free sites: any nonzero
         value is an FP-analysis soundness violation *)
  hist : int array;
  mutable exact : int; (* sinks with zero divergence *)
  mutable checked : int; (* sinks compared *)
  mutable max_rel_err : float;
  mutable max_err_site : int;
  mutable sink_compare : int;
  mutable sink_print : int;
  mutable sink_serialize : int;
  mutable sink_demote : int;
}

let create ?(shadow = false) ?clean ?(static_candidates = []) () =
  { shadow_mode = shadow;
    shadow = Hashtbl.create (if shadow then 4096 else 1);
    clean;
    static_candidates;
    sites = Array.make 256 None;
    max_index = -1;
    elided = 0;
    nan_violations = 0;
    hist = Array.make n_buckets 0;
    exact = 0;
    checked = 0;
    max_rel_err = 0.0;
    max_err_site = -1;
    sink_compare = 0;
    sink_print = 0;
    sink_serialize = 0;
    sink_demote = 0 }

(* The elided fast path at a proven birth-free site: no site entry, no
   classification, no shadow store — just the soundness check that no
   NaN/Inf was in fact born here (the exact event classify would call a
   birth). *)
let check_clean t ~a ~b ~r ~unary =
  t.elided <- t.elided + 1;
  let op_nan = is_nan a || ((not unary) && is_nan b) in
  let op_inf = is_inf a || ((not unary) && is_inf b) in
  if (is_nan r && not op_nan) || (is_inf r && not op_inf) then
    t.nan_violations <- t.nan_violations + 1

let site_for t i =
  let i = max 0 i in
  if i >= Array.length t.sites then begin
    let n = ref (Array.length t.sites) in
    while i >= !n do
      n := !n * 2
    done;
    let a = Array.make !n None in
    Array.blit t.sites 0 a 0 (Array.length t.sites);
    t.sites <- a
  end;
  if i > t.max_index then t.max_index <- i;
  match t.sites.(i) with
  | Some s -> s
  | None ->
      let s = fresh_site () in
      t.sites.(i) <- Some s;
      s

let classify s ~a ~b ~r ~unary =
  let op_nan = is_nan a || ((not unary) && is_nan b) in
  let op_inf = is_inf a || ((not unary) && is_inf b) in
  (if is_nan r then
     if op_nan then s.nan_props <- s.nan_props + 1
     else s.nan_births <- s.nan_births + 1
   else if op_nan then s.nan_kills <- s.nan_kills + 1);
  if is_inf r then begin
    if op_inf then s.inf_props <- s.inf_props + 1
    else s.inf_births <- s.inf_births + 1
  end
  else if op_inf && not (is_nan r) then s.inf_kills <- s.inf_kills + 1

(* Shadow of an operand: its stored vanilla value if the table still
   recognizes the box (image unchanged since store), else the port's
   own demoted image; raw (unboxed) machine words are their own
   binary64 shadow. *)
let shadow_of t bits image =
  if Fpvm.Nanbox.is_boxed bits then
    match Hashtbl.find_opt t.shadow bits with
    | Some (img, sh) when img = image -> sh
    | _ -> image
  else bits

let relerr x_bits y_bits =
  if Int64.equal x_bits y_bits then 0.0
  else
    let fx = Int64.float_of_bits x_bits in
    let fy = Int64.float_of_bits y_bits in
    let nx = Float.is_nan fx and ny = Float.is_nan fy in
    if nx && ny then 0.0
    else if nx || ny then infinity
    else if fx = fy then 0.0
    else
      let d = Float.abs (fx -. fy) in
      let m = Float.max (Float.abs fx) (Float.max (Float.abs fy) 1e-300) in
      d /. m

let bucket_of err =
  if err >= 1.0 then n_buckets - 1
  else
    let l = log err /. log 2.0 in
    let k = int_of_float (Float.floor l) + 64 in
    if k < 0 then 0 else if k > n_buckets - 1 then n_buckets - 1 else k

let observe_sink t index err =
  t.checked <- t.checked + 1;
  if err = 0.0 then t.exact <- t.exact + 1
  else begin
    t.hist.(bucket_of err) <- t.hist.(bucket_of err) + 1;
    if err > t.max_rel_err then begin
      t.max_rel_err <- err;
      t.max_err_site <- index
    end;
    let s = site_for t index in
    if err > s.max_err then s.max_err <- err
  end

let record t (ev : Fpvm.Probe.num) =
  match ev with
  | Fpvm.Probe.N_op { index; op; a_bits; b_bits; r_bits; a; b; r } -> (
      let unary = op = Isa.FSQRT in
      match t.clean with
      | Some clean when clean index -> check_clean t ~a ~b ~r ~unary
      | _ ->
          let s = site_for t index in
          s.ops <- s.ops + 1;
          classify s ~a ~b ~r ~unary;
          if t.shadow_mode then begin
            let sa = shadow_of t a_bits a in
            let sb = shadow_of t b_bits b in
            let expected = op_expected op sa sb in
            Hashtbl.replace t.shadow r_bits (r, expected)
          end)
  | Fpvm.Probe.N_ext { index; fn; a_bits; b_bits; r_bits; a; b; r } -> (
      let unary =
        match fn with
        | Isa.Atan2 | Isa.Pow | Isa.Fmod | Isa.Hypot -> false
        | _ -> true
      in
      match t.clean with
      | Some clean when clean index -> check_clean t ~a ~b ~r ~unary
      | _ ->
          let s = site_for t index in
          s.ops <- s.ops + 1;
          classify s ~a ~b ~r ~unary;
          if t.shadow_mode then begin
            let sa = shadow_of t a_bits a in
            let sb = shadow_of t b_bits b in
            match ext_expected fn sa sb with
            | Some expected -> Hashtbl.replace t.shadow r_bits (r, expected)
            | None -> ()
          end)
  | Fpvm.Probe.N_sink { index; kind; bits; f64 } ->
      (match kind with
      | Fpvm.Probe.S_compare -> t.sink_compare <- t.sink_compare + 1
      | Fpvm.Probe.S_print -> t.sink_print <- t.sink_print + 1
      | Fpvm.Probe.S_serialize -> t.sink_serialize <- t.sink_serialize + 1
      | Fpvm.Probe.S_demote -> t.sink_demote <- t.sink_demote + 1);
      (site_for t index).sinks <- (site_for t index).sinks + 1;
      if t.shadow_mode then
        observe_sink t index (relerr f64 (shadow_of t bits f64))
  | Fpvm.Probe.N_rebox { old_bits; new_bits; _ } ->
      (* A scratch temp was promoted to a durable box: the shadow must
         follow the value to its new key, or every sink that reads the
         re-boxed value would silently heal to the port's own image. *)
      if t.shadow_mode then (
        match Hashtbl.find_opt t.shadow old_bits with
        | Some pair ->
            Hashtbl.remove t.shadow old_bits;
            Hashtbl.replace t.shadow new_bits pair
        | None -> ())

let max_rel_err t = t.max_rel_err

let totals t =
  let nb = ref 0 and np = ref 0 and nk = ref 0 in
  let ib = ref 0 and ip = ref 0 and ik = ref 0 in
  for i = 0 to t.max_index do
    match t.sites.(i) with
    | Some s ->
        nb := !nb + s.nan_births;
        np := !np + s.nan_props;
        nk := !nk + s.nan_kills;
        ib := !ib + s.inf_births;
        ip := !ip + s.inf_props;
        ik := !ik + s.inf_kills
    | None -> ()
  done;
  (!nb, !np, !nk, !ib, !ip, !ik)

(* Sites with any NaN/Inf traffic or divergence, hottest first by
   (births + props + kills, max_err). *)
let hot_sites t n =
  let score s =
    s.nan_births + s.nan_props + s.nan_kills + s.inf_births + s.inf_props
    + s.inf_kills
  in
  let all = ref [] in
  for i = t.max_index downto 0 do
    match t.sites.(i) with
    | Some s -> if score s > 0 || s.max_err > 0.0 then all := (i, s) :: !all
    | None -> ()
  done;
  let sorted =
    List.sort
      (fun (i1, s1) (i2, s2) ->
        match compare (score s2) (score s1) with
        | 0 -> (
            match compare s2.max_err s1.max_err with
            | 0 -> compare i1 i2
            | c -> c)
        | c -> c)
      !all
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: tl -> x :: take (k - 1) tl
  in
  take n sorted

let schema_version = 1

(* Which dynamic sites of this run were born at (for cross-referencing
   the static candidate list in the reports). *)
let births_at t i =
  if i <= t.max_index then
    match t.sites.(i) with
    | Some s -> s.nan_births + s.inf_births
    | None -> 0
  else 0

let report_text ?(n = 10) t bb =
  let nb, np, nk, ib, ip, ik = totals t in
  Buffer.add_string bb
    (Printf.sprintf
       "numerical telemetry: NaN birth/prop/kill %d/%d/%d, Inf birth/prop/kill %d/%d/%d\n"
       nb np nk ib ip ik);
  if t.elided > 0 || t.nan_violations > 0 then
    Buffer.add_string bb
      (Printf.sprintf
         "  static elision: %d op records skipped at proven birth-free sites, %d violations\n"
         t.elided t.nan_violations);
  (match t.static_candidates with
  | [] -> ()
  | cands ->
      Buffer.add_string bb
        (Printf.sprintf
           "  static birth candidates (%d sites flagged by the FP analysis):\n"
           (List.length cands));
      List.iter
        (fun (i, risks) ->
          let seen = births_at t i in
          Buffer.add_string bb
            (Printf.sprintf "    site %4d: %s%s\n" i
               (String.concat "," risks)
               (if seen > 0 then
                  Printf.sprintf "  (born %d times this run)" seen
                else "")))
        cands);
  if t.shadow_mode then begin
    Buffer.add_string bb
      (Printf.sprintf
         "shadow-check: %d sinks compared (%d exact), max relative error %.3e%s\n"
         t.checked t.exact t.max_rel_err
         (if t.max_err_site >= 0 then
            Printf.sprintf " at site %d" t.max_err_site
          else ""));
    let any = Array.exists (fun c -> c > 0) t.hist in
    if any then begin
      Buffer.add_string bb "  relative-error histogram (log2 buckets):\n";
      Array.iteri
        (fun k c ->
          if c > 0 then
            Buffer.add_string bb
              (if k = n_buckets - 1 then
                 Printf.sprintf "    2^>=0     : %d\n" c
               else Printf.sprintf "    2^%-4d    : %d\n" (k - 64) c))
        t.hist
    end
  end;
  match hot_sites t n with
  | [] -> ()
  | sites ->
      Buffer.add_string bb
        "  site      ops nan b/p/k       inf b/p/k       max_rel_err\n";
      List.iter
        (fun (i, s) ->
          Buffer.add_string bb
            (Printf.sprintf "  %4d %8d %5d/%-5d/%-5d %5d/%-5d/%-5d %.3e\n" i
               s.ops s.nan_births s.nan_props s.nan_kills s.inf_births
               s.inf_props s.inf_kills s.max_err))
        sites

let report_json ?(n = 10) t bb =
  let nb, np, nk, ib, ip, ik = totals t in
  Buffer.add_string bb
    (Printf.sprintf
       "{\n  \"schema_version\": %d,\n  \"shadow_check\": %b,\n  \"nan\": {\"births\":%d,\"props\":%d,\"kills\":%d},\n  \"inf\": {\"births\":%d,\"props\":%d,\"kills\":%d},\n  \"elided\": %d,\n  \"violations\": %d,\n  \"static_candidates\": ["
       schema_version t.shadow_mode nb np nk ib ip ik t.elided
       t.nan_violations);
  List.iteri
    (fun k (i, risks) ->
      if k > 0 then Buffer.add_char bb ',';
      Buffer.add_string bb
        (Printf.sprintf "{\"site\":%d,\"risks\":[%s],\"born\":%d}" i
           (String.concat ","
              (List.map (fun r -> Printf.sprintf "\"%s\"" r) risks))
           (births_at t i)))
    t.static_candidates;
  Buffer.add_string bb
    (Printf.sprintf
       "],\n  \"sinks\": {\"compare\":%d,\"print\":%d,\"serialize\":%d,\"demote\":%d},\n  \"checked\": %d,\n  \"exact\": %d,\n  \"max_rel_err\": %.17g,\n  \"max_err_site\": %d,\n  \"err_hist\": ["
       t.sink_compare t.sink_print t.sink_serialize t.sink_demote t.checked
       t.exact t.max_rel_err t.max_err_site);
  Array.iteri
    (fun k c ->
      if k > 0 then Buffer.add_char bb ',';
      Buffer.add_string bb (string_of_int c))
    t.hist;
  Buffer.add_string bb "],\n  \"sites\": [\n";
  List.iteri
    (fun k (i, s) ->
      if k > 0 then Buffer.add_string bb ",\n";
      Buffer.add_string bb
        (Printf.sprintf
           "    {\"site\":%d,\"ops\":%d,\"nan_births\":%d,\"nan_props\":%d,\"nan_kills\":%d,\"inf_births\":%d,\"inf_props\":%d,\"inf_kills\":%d,\"sinks\":%d,\"max_rel_err\":%.17g}"
           i s.ops s.nan_births s.nan_props s.nan_kills s.inf_births
           s.inf_props s.inf_kills s.sinks s.max_err))
    (hot_sites t n);
  Buffer.add_string bb "\n  ]\n}\n"
