(* fpvm_run: the command-line face of the reproduction.

   Runs a workload binary natively or under FPVM with a chosen
   alternative arithmetic system, approach, machine model and trap
   deployment, then prints the program output and (optionally) the
   virtualization statistics. Execution can be recorded to an event
   log, replayed against one, checkpointed and resumed, and two logs
   can be bisected for their first diverging event.

     fpvm_run --list
     fpvm_run -w lorenz -a mpfr --prec 200 --stats
     fpvm_run -w "NAS CG" -a posit --posit 32
     fpvm_run -w three-body --approach patch --machine 7220
     fpvm_run -w lorenz --record lorenz.log --checkpoint-every 50
     fpvm_run -w lorenz --replay lorenz.log
     fpvm_run -w lorenz --from-checkpoint lorenz.log.ckpt50
     fpvm_run bisect a.log b.log --arch-only *)

module CM = Machine.Cost_model
module W = Workloads

(* The functor-erased per-arithmetic driver and its port constructors
   live in lib/fleet ({!Fleet.driver}, {!Fleet.Port}): fpvm_run is the
   one-guest case of the same machinery fpvm_serve schedules fleets
   with, so a solo run and a fleet guest construct their arithmetic
   identically — the bit-identity guarantee is by construction. *)

let config_fingerprint (c : Fpvm.Engine.config) machine =
  Printf.sprintf
    "approach=%s;deploy=%d;vsa=%b;fpa=%b;orc=%b;gc=%d;inc=%b;full=%d;cache=%b;alw=%b;trace=%d;plans=%b;jit=%b;jthr=%d;jmtl=%d;mach=%s"
    (match c.Fpvm.Engine.approach with
    | Fpvm.Engine.Trap_and_emulate -> "emulate"
    | Fpvm.Engine.Trap_and_patch -> "patch"
    | Fpvm.Engine.Static_transform -> "static")
    (Trapkern.deployment_id c.Fpvm.Engine.deployment)
    c.Fpvm.Engine.use_vsa c.Fpvm.Engine.use_fpa c.Fpvm.Engine.oracle
    c.Fpvm.Engine.gc_interval
    c.Fpvm.Engine.incremental_gc c.Fpvm.Engine.full_scan_every
    c.Fpvm.Engine.decode_cache c.Fpvm.Engine.always_emulate
    c.Fpvm.Engine.max_trace_len c.Fpvm.Engine.use_plans
    c.Fpvm.Engine.use_jit c.Fpvm.Engine.jit_threshold
    c.Fpvm.Engine.jit_max_trace_len machine

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let print_json ~workload ~arith ~scale (r : Fpvm.Engine.result) =
  let s = r.Fpvm.Engine.stats in
  let kv_s k v = Printf.sprintf "  %S: \"%s\"" k (json_escape v) in
  let kv_i k v = Printf.sprintf "  %S: %d" k v in
  let fields =
    [
      kv_i "schema_version" 1;
      kv_s "workload" workload;
      kv_s "arith" arith;
      kv_s "scale" scale;
      kv_i "cycles" r.Fpvm.Engine.cycles;
      kv_i "insns" r.Fpvm.Engine.insns;
      kv_i "fp_insns" r.Fpvm.Engine.fp_insns;
      kv_i "fp_traps" s.Fpvm.Stats.fp_traps;
      kv_i "correctness_traps" s.Fpvm.Stats.correctness_traps;
      kv_i "corr_demote_boxed" s.Fpvm.Stats.corr_demote_boxed;
      kv_i "corr_demote_clean" s.Fpvm.Stats.corr_demote_clean;
      kv_i "patched_sites" s.Fpvm.Stats.patched_sites;
      kv_i "patched_sites_boxed" s.Fpvm.Stats.patched_sites_boxed;
      kv_i "trap_checks_elided" s.Fpvm.Stats.trap_checks_elided;
      kv_i "oracle_loads_checked" s.Fpvm.Stats.oracle_loads_checked;
      kv_i "oracle_boxed_loads" s.Fpvm.Stats.oracle_boxed_loads;
      kv_i "traces" s.Fpvm.Stats.traces;
      kv_i "trace_insns" s.Fpvm.Stats.trace_insns;
      kv_i "traps_avoided" s.Fpvm.Stats.traps_avoided;
      kv_i "emulated_insns" s.Fpvm.Stats.emulated_insns;
      kv_i "math_calls" s.Fpvm.Stats.math_calls;
      kv_i "decode_hits" s.Fpvm.Stats.decode_hits;
      kv_i "decode_misses" s.Fpvm.Stats.decode_misses;
      kv_i "plan_hits" s.Fpvm.Stats.plan_hits;
      kv_i "plan_misses" s.Fpvm.Stats.plan_misses;
      kv_i "plan_invalidations" s.Fpvm.Stats.plan_invalidations;
      kv_i "temps_elided" s.Fpvm.Stats.temps_elided;
      kv_i "temps_materialized" s.Fpvm.Stats.temps_materialized;
      kv_i "allocs_avoided" (Fpvm.Stats.allocs_avoided s);
      kv_i "jit_compiles" s.Fpvm.Stats.jit_compiles;
      kv_i "jit_hits" s.Fpvm.Stats.jit_hits;
      kv_i "jit_links" s.Fpvm.Stats.jit_links;
      kv_i "jit_guard_exits" s.Fpvm.Stats.jit_guard_exits;
      kv_i "jit_invalidations" s.Fpvm.Stats.jit_invalidations;
      kv_i "cyc_jit" s.Fpvm.Stats.cyc_jit;
      kv_i "cyc_plan" s.Fpvm.Stats.cyc_plan;
      kv_i "cyc_bind" s.Fpvm.Stats.cyc_bind;
      kv_i "cyc_emu_dispatch" s.Fpvm.Stats.cyc_emu_dispatch;
      kv_i "boxes_allocated" s.Fpvm.Stats.boxes_allocated;
      kv_i "gc_passes" s.Fpvm.Stats.gc_passes;
      kv_i "gc_full_passes" s.Fpvm.Stats.gc_full_passes;
      kv_i "gc_freed" s.Fpvm.Stats.gc_freed;
      kv_i "gc_words_scanned" s.Fpvm.Stats.gc_words_scanned;
      kv_i "replay_events" s.Fpvm.Stats.replay_events;
      kv_i "replay_checkpoints" s.Fpvm.Stats.replay_checkpoints;
      kv_i "replay_checkpoint_bytes" s.Fpvm.Stats.replay_checkpoint_bytes;
      kv_i "replay_log_bytes" s.Fpvm.Stats.replay_log_bytes;
      kv_i "tel_events" s.Fpvm.Stats.tel_events;
      kv_i "tel_dropped" s.Fpvm.Stats.tel_dropped;
      kv_i "fpa_sites_proven" s.Fpvm.Stats.fpa_sites_proven;
      kv_i "fused_unguarded" s.Fpvm.Stats.fused_unguarded;
      kv_i "shadow_elided" s.Fpvm.Stats.shadow_elided;
      kv_i "jit_fused_steps" s.Fpvm.Stats.jit_fused_steps;
      kv_i "fpa_sub_violations" s.Fpvm.Stats.fpa_sub_violations;
      kv_i "fpa_nan_violations" s.Fpvm.Stats.fpa_nan_violations;
      kv_i "cache_hits" s.Fpvm.Stats.cache_hits;
      kv_i "cache_misses" s.Fpvm.Stats.cache_misses;
      kv_i "blocks_shared" s.Fpvm.Stats.blocks_shared;
      kv_i "cyc_compile_shared" s.Fpvm.Stats.cyc_compile_shared;
      kv_i "flows_open" s.Fpvm.Stats.flows_open;
      kv_i "flows_completed" s.Fpvm.Stats.flows_completed;
      kv_i "flows_dropped" s.Fpvm.Stats.flows_dropped;
      kv_i "flows_real" s.Fpvm.Stats.flows_real;
      kv_i "flows_spurious" s.Fpvm.Stats.flows_spurious;
      kv_i "output_bytes" (String.length r.Fpvm.Engine.output);
      kv_i "serialized_bytes" (String.length r.Fpvm.Engine.serialized);
      kv_s "stats_fingerprint" (Fpvm.Stats.fingerprint s);
    ]
  in
  Printf.printf "{\n%s\n}\n" (String.concat ",\n" fields)

let print_stats (r : Fpvm.Engine.result) =
  let s = r.Fpvm.Engine.stats in
  Printf.eprintf "--- fpvm stats ---\n";
  Printf.eprintf "instructions executed: %d (%d FP)\n" r.Fpvm.Engine.insns
    r.Fpvm.Engine.fp_insns;
  Printf.eprintf "cycles: %d\n" r.Fpvm.Engine.cycles;
  Printf.eprintf "fp traps: %d, correctness traps: %d (%d boxed / %d clean)\n"
    s.Fpvm.Stats.fp_traps s.Fpvm.Stats.correctness_traps
    s.Fpvm.Stats.corr_demote_boxed s.Fpvm.Stats.corr_demote_clean;
  Printf.eprintf
    "vsa: %d sites patched (%d ever boxed), %d trap checks elided\n"
    s.Fpvm.Stats.patched_sites s.Fpvm.Stats.patched_sites_boxed
    s.Fpvm.Stats.trap_checks_elided;
  if s.Fpvm.Stats.oracle_loads_checked > 0 then
    Printf.eprintf "oracle: %d loads checked, %d boxed-value violations\n"
      s.Fpvm.Stats.oracle_loads_checked s.Fpvm.Stats.oracle_boxed_loads;
  Printf.eprintf
    "fpa: %d sites proven, %d fused unguarded, %d shadow checks elided, %d fused steps\n"
    s.Fpvm.Stats.fpa_sites_proven s.Fpvm.Stats.fused_unguarded
    s.Fpvm.Stats.shadow_elided s.Fpvm.Stats.jit_fused_steps;
  if s.Fpvm.Stats.fpa_sub_violations > 0 || s.Fpvm.Stats.fpa_nan_violations > 0
  then
    Printf.eprintf "fpa VIOLATIONS: %d subnormal, %d nan/inf birth\n"
      s.Fpvm.Stats.fpa_sub_violations s.Fpvm.Stats.fpa_nan_violations;
  Printf.eprintf "traces: %d (mean len %.1f), in-trace faults absorbed: %d\n"
    s.Fpvm.Stats.traces
    (Fpvm.Stats.mean_trace_len s)
    s.Fpvm.Stats.traps_avoided;
  Printf.eprintf "emulated insns: %d, math calls: %d\n"
    s.Fpvm.Stats.emulated_insns s.Fpvm.Stats.math_calls;
  Printf.eprintf "decode cache: %d hits / %d misses\n" s.Fpvm.Stats.decode_hits
    s.Fpvm.Stats.decode_misses;
  Printf.eprintf "plans: %d hits / %d misses (%d invalidated)\n"
    s.Fpvm.Stats.plan_hits s.Fpvm.Stats.plan_misses
    s.Fpvm.Stats.plan_invalidations;
  Printf.eprintf
    "jit: %d compiles, %d hits, %d links, %d guard exits (%d invalidated)\n"
    s.Fpvm.Stats.jit_compiles s.Fpvm.Stats.jit_hits s.Fpvm.Stats.jit_links
    s.Fpvm.Stats.jit_guard_exits s.Fpvm.Stats.jit_invalidations;
  if s.Fpvm.Stats.cache_hits > 0 || s.Fpvm.Stats.cache_misses > 0 then
    Printf.eprintf
      "artifact cache: %d hits / %d misses, %d blocks shared (%d compile \
       cycles off-guest)\n"
      s.Fpvm.Stats.cache_hits s.Fpvm.Stats.cache_misses
      s.Fpvm.Stats.blocks_shared s.Fpvm.Stats.cyc_compile_shared;
  Printf.eprintf
    "temps elided: %d (%d re-boxed at trace exit, %d allocs avoided)\n"
    s.Fpvm.Stats.temps_elided s.Fpvm.Stats.temps_materialized
    (Fpvm.Stats.allocs_avoided s);
  Printf.eprintf "boxes allocated: %d, gc passes: %d, freed: %d\n"
    s.Fpvm.Stats.boxes_allocated s.Fpvm.Stats.gc_passes s.Fpvm.Stats.gc_freed;
  Printf.eprintf "gc: %d full passes, %d words scanned\n"
    s.Fpvm.Stats.gc_full_passes s.Fpvm.Stats.gc_words_scanned;
  if s.Fpvm.Stats.replay_events > 0 then
    Printf.eprintf "replay: %d events (%d bytes), %d checkpoints (%d bytes)\n"
      s.Fpvm.Stats.replay_events s.Fpvm.Stats.replay_log_bytes
      s.Fpvm.Stats.replay_checkpoints s.Fpvm.Stats.replay_checkpoint_bytes;
  if s.Fpvm.Stats.tel_events > 0 then
    Printf.eprintf "telemetry: %d events observed (%d ring-dropped)\n"
      s.Fpvm.Stats.tel_events s.Fpvm.Stats.tel_dropped;
  if
    s.Fpvm.Stats.flows_open > 0 || s.Fpvm.Stats.flows_completed > 0
    || s.Fpvm.Stats.flows_dropped > 0
  then
    Printf.eprintf "flows: %d completed, %d open, %d dropped\n"
      s.Fpvm.Stats.flows_completed s.Fpvm.Stats.flows_open
      s.Fpvm.Stats.flows_dropped;
  let b = Fpvm.Stats.breakdown s in
  Printf.eprintf "avg cycles/virtualized insn: %.0f\n" b.Fpvm.Stats.avg_total

(* Flip one bit of event [n]'s state digest and re-encode: a seeded
   divergence the bisector and replayer must pin to exactly [n]. *)
let inject_divergence (log_bytes : string) n =
  let log = Replay.Log.of_string log_bytes in
  if n < 0 || n >= Array.length log.Replay.Log.events then
    failwith
      (Printf.sprintf "--inject-divergence %d out of range (log has %d events)"
         n
         (Array.length log.Replay.Log.events));
  let w = Replay.Log.writer log.Replay.Log.meta in
  Array.iteri
    (fun i (e : Replay.Event.t) ->
      let e =
        if i = n then { e with Replay.Event.chk = Int64.logxor e.Replay.Event.chk 1L }
        else e
      in
      Replay.Log.add w e)
    log.Replay.Log.events;
  Replay.Log.contents w

(* ---- run command ------------------------------------------------------ *)

(* Log/checkpoint I-O failures are user errors, not crashes. *)
let guard f =
  match f () with
  | r -> r
  | exception Replay.Codec.Corrupt msg -> `Error (false, msg)
  | exception Sys_error msg -> `Error (false, msg)
  | exception Failure msg -> `Error (false, msg)

let run workload arith prec posit_bits approach machine deployment scale
    trace_len full_gc gc_interval no_plans no_jit jit_threshold
    jit_max_trace_len no_fpa oracle stats json disasm spy list_only record_file
    replay_file checkpoint_every from_checkpoint inject inject_nan trace_out
    profile profile_out shadow_check flows flow_capacity cache_dir no_cache =
  if list_only then begin
    List.iter
      (fun (e : W.entry) -> Printf.printf "%-12s %s\n" e.W.name e.W.specifics)
      W.all;
    `Ok 0
  end
  else if trace_len < 1 then
    `Error (false, Printf.sprintf "--trace-len must be >= 1 (got %d)" trace_len)
  else if prec < 2 then
    `Error (false, Printf.sprintf "--prec must be >= 2 (got %d)" prec)
  else if not (List.mem posit_bits [ 8; 16; 32 ]) then
    `Error (false, Printf.sprintf "--posit must be 8, 16 or 32 (got %d)" posit_bits)
  else if gc_interval <= 0 then
    `Error (false, Printf.sprintf "--gc-interval must be > 0 (got %d)" gc_interval)
  else if jit_threshold < 1 then
    `Error
      (false, Printf.sprintf "--jit-threshold must be >= 1 (got %d)" jit_threshold)
  else if jit_max_trace_len < 1 then
    `Error
      ( false,
        Printf.sprintf "--jit-max-trace-len must be >= 1 (got %d)"
          jit_max_trace_len )
  else if checkpoint_every < 0 then
    `Error
      (false, Printf.sprintf "--checkpoint-every must be >= 0 (got %d)" checkpoint_every)
  else if record_file <> "" && replay_file <> "" then
    `Error (false, "--record and --replay are mutually exclusive")
  else begin
    match W.find workload with
    | None ->
        `Error (false, Printf.sprintf "unknown workload %S (try --list)" workload)
    | Some e -> (
        let wscale = if scale = "s" then W.S else W.Test in
        match
          (try
             Ok
               (let p = e.W.program wscale in
                if inject_nan >= 0 then
                  Machine.Program.inject_nan p ~nth:inject_nan
                else p)
           with Invalid_argument m -> Error m)
        with
        | Error m -> `Error (false, m)
        | Ok prog ->
        if disasm then begin
          print_string (Machine.Program.disassemble prog);
          `Ok 0
        end
        else if spy then begin
          (* FPSpy mode: profile the binary's floating point events *)
          let r = Fpvm.Fpspy.run prog in
          print_string r.Fpvm.Fpspy.run.Fpvm.Engine.output;
          Format.eprintf "--- fpspy profile ---@.%a@." Fpvm.Fpspy.pp_profile
            r.Fpvm.Fpspy.profile;
          Format.eprintf "top sites:@.";
          List.iter
            (fun (site : Fpvm.Fpspy.site) ->
              Format.eprintf "  %8d hits  [%4d] %s (%s)@."
                site.Fpvm.Fpspy.hits site.Fpvm.Fpspy.index
                site.Fpvm.Fpspy.mnemonic
                (String.concat "+" (Ieee754.Flags.names site.Fpvm.Fpspy.events)))
            (Fpvm.Fpspy.top_sites ~n:8 r.Fpvm.Fpspy.profile);
          `Ok 0
        end
        else
          let arith = String.lowercase_ascii arith in
          match
            (match String.lowercase_ascii machine with
            | "r815" -> Ok CM.r815
            | "7220" -> Ok CM.xeon7220
            | "r730xd" -> Ok CM.r730xd
            | m -> Error (Printf.sprintf "unknown machine %S (r815, 7220, r730xd)" m)),
            (match deployment with
            | "user" -> Ok Trapkern.User_signal
            | "kernel" -> Ok Trapkern.Kernel_module
            | "uu" -> Ok Trapkern.User_to_user
            | d -> Error (Printf.sprintf "unknown deployment %S (user, kernel, uu)" d)),
            (match approach with
            | "emulate" -> Ok Fpvm.Engine.Trap_and_emulate
            | "patch" -> Ok Fpvm.Engine.Trap_and_patch
            | "static" -> Ok Fpvm.Engine.Static_transform
            | a -> Error (Printf.sprintf "unknown approach %S (emulate, patch, static)" a))
          with
          | Error m, _, _ | _, Error m, _ | _, _, Error m -> `Error (false, m)
          | Ok cost, Ok deployment, Ok approach -> (
              let config =
                { Fpvm.Engine.default_config with
                  Fpvm.Engine.approach; cost; deployment; gc_interval; oracle;
                  Fpvm.Engine.max_trace_len = trace_len;
                  Fpvm.Engine.incremental_gc = not full_gc;
                  Fpvm.Engine.use_plans = not no_plans;
                  Fpvm.Engine.use_jit = not no_jit;
                  Fpvm.Engine.use_fpa = not no_fpa;
                  Fpvm.Engine.jit_threshold;
                  Fpvm.Engine.jit_max_trace_len }
              in
              let driver =
                Result.map Fleet.port_driver
                  (Fleet.Port.of_flags ~arith ~prec ~posit:posit_bits)
              in
              match driver with
              | Error m -> `Error (false, m)
              | Ok _ when arith = "native" && (record_file <> "" || replay_file <> "" || from_checkpoint <> "") ->
                  `Error (false, "--record/--replay/--from-checkpoint require an FPVM arithmetic, not native")
              | Ok _
                when arith = "native"
                     && (trace_out <> "" || profile || profile_out <> ""
                        || shadow_check || flows) ->
                  `Error
                    ( false,
                      "--trace-out/--profile/--shadow-check/--flows require \
                       an FPVM arithmetic, not native" )
              | Ok d ->
                  (* One shared analysis per run: the driver reuses it to
                     patch sinks, the engine consumes the FP tier for
                     fusion widening, and the numprof elision predicate /
                     static birth candidates come from the same verdicts —
                     no tier runs twice. *)
                  let facts =
                    if arith = "native" then None
                    else Some (Fpvm.Vsa.analyze prog)
                  in
                  let clean, static_candidates =
                    match facts with
                    | Some a when config.Fpvm.Engine.use_fpa ->
                        let fpa = a.Fpvm.Vsa.fpa in
                        let born =
                          Analysis.Fpa.born_free_array fpa
                            (Array.length prog.Machine.Program.insns)
                        in
                        ( Some
                            (fun i ->
                              i >= 0 && i < Array.length born && born.(i)),
                          Array.to_list fpa.Analysis.Fpa.verdicts
                          |> List.filter_map
                               (fun (v : Analysis.Fpa.verdict) ->
                                 let concrete =
                                   List.filter
                                     (fun r ->
                                       String.length r >= 4
                                       && (String.sub r 0 4 = "nan:"
                                          || String.sub r 0 4 = "inf:"))
                                     v.Analysis.Fpa.v_risks
                                 in
                                 if concrete = [] then None
                                 else
                                   Some (v.Analysis.Fpa.v_index, concrete))
                        )
                    | _ -> (None, [])
                  in
                  let tel =
                    if
                      trace_out <> "" || profile || profile_out <> ""
                      || shadow_check || flows
                      || (oracle && arith <> "native")
                    then
                      Some
                        (Telemetry.create ~trace:(trace_out <> "")
                           ~profile:(profile || profile_out <> "")
                           ~numprof:oracle ~shadow:shadow_check ?clean
                           ~static_candidates ~flows ?flow_capacity ())
                    else None
                  in
                  let instrument =
                    Option.map
                      (fun t sink -> Telemetry.attach t sink)
                      tel
                  in
                  let meta =
                    { Replay.Log.workload = e.W.name;
                      scale;
                      arith =
                        (match arith with
                        | "mpfr" | "slash" -> Printf.sprintf "%s:%d" arith prec
                        | "posit" -> Printf.sprintf "posit:%d" posit_bits
                        | a -> a);
                      config =
                        (config_fingerprint config machine
                        ^
                        if inject_nan >= 0 then
                          Printf.sprintf ";injnan=%d" inject_nan
                        else "") }
                  in
                  let write_text path s =
                    let oc = open_out path in
                    output_string oc s;
                    close_out oc
                  in
                  (* Persistent warm start: load this session's artifact
                     cache file (if any) into a fresh store before the
                     run, save it back after. Any mismatch or corruption
                     makes the load a silent no-op — the run is then
                     simply cold. Replay keeps its accounting faithful
                     to the log's original run, so no store there. *)
                  let cache_store =
                    if no_cache || arith = "native" || replay_file <> "" then
                      None
                    else begin
                      let dir =
                        if cache_dir <> "" then cache_dir
                        else Fpvm.Artifact.default_dir ()
                      in
                      let store = Fpvm.Artifact.create () in
                      let key = d.d_session_key ~config prog in
                      ignore (Fpvm.Artifact.load store ~dir ~key);
                      Some (store, dir, key)
                    end
                  in
                  let cache_art =
                    Option.map (fun (st, _, _) -> st) cache_store
                  in
                  let finish ?(code = 0) (r : Fpvm.Engine.result) =
                    (match cache_store with
                    | Some (store, dir, key) ->
                        ignore (Fpvm.Artifact.save store ~dir ~key)
                    | None -> ());
                    print_string r.Fpvm.Engine.output;
                    (match tel with
                    | None -> ()
                    | Some t ->
                        Telemetry.finalize t r.Fpvm.Engine.stats;
                        (match t.Telemetry.trace with
                        | Some tr when trace_out <> "" ->
                            (* flow arrows ride the same timeline file *)
                            let extra =
                              Option.map
                                (fun fr bb first ->
                                  Telemetry.Flowrec.export_flows fr bb first)
                                t.Telemetry.flows
                            in
                            Telemetry.Trace.write_file ?extra tr trace_out;
                            Printf.eprintf
                              "trace: %d events -> %s (%d dropped)\n"
                              (Telemetry.Trace.recorded tr)
                              trace_out
                              (Telemetry.Trace.dropped tr)
                        | _ -> ());
                        (match t.Telemetry.flows with
                        | Some fr ->
                            let opn, comp, drop = Telemetry.Flowrec.gauges fr in
                            Printf.eprintf
                              "flows: %d completed, %d open, %d dropped (%d \
                               links ring-dropped)\n"
                              comp opn drop
                              (Telemetry.Flowrec.links_dropped fr)
                        | None -> ());
                        (match t.Telemetry.profile with
                        | Some p ->
                            if profile then begin
                              let bb = Buffer.create 1024 in
                              Telemetry.Profile.report_text p
                                r.Fpvm.Engine.stats bb;
                              prerr_string (Buffer.contents bb)
                            end;
                            if profile_out <> "" then begin
                              let bb = Buffer.create 1024 in
                              Telemetry.Profile.report_json ~n:32 p
                                r.Fpvm.Engine.stats bb;
                              write_text profile_out (Buffer.contents bb)
                            end
                        | None -> ());
                        match t.Telemetry.numprof with
                        | Some np when shadow_check ->
                            let bb = Buffer.create 1024 in
                            Telemetry.Numprof.report_text np bb;
                            prerr_string (Buffer.contents bb)
                        | _ -> ());
                    if json then print_json ~workload:e.W.name ~arith:meta.Replay.Log.arith ~scale r;
                    if stats then print_stats r;
                    let s = r.Fpvm.Engine.stats in
                    let fpa_violated =
                      s.Fpvm.Stats.fpa_sub_violations > 0
                      || s.Fpvm.Stats.fpa_nan_violations > 0
                    in
                    if
                      oracle
                      && (s.Fpvm.Stats.oracle_boxed_loads > 0 || fpa_violated)
                    then begin
                      if s.Fpvm.Stats.oracle_boxed_loads > 0 then
                        Printf.eprintf
                          "soundness oracle: %d unpatched integer load(s) observed a live NaN-boxed value (%d loads checked) — the static analysis missed a sink\n"
                          s.Fpvm.Stats.oracle_boxed_loads
                          s.Fpvm.Stats.oracle_loads_checked;
                      if fpa_violated then
                        Printf.eprintf
                          "fpa soundness oracle: %d subnormal raw input(s) at proven-subnormal-free sites, %d NaN/Inf birth(s) at proven-clean sites — the FP special-value analysis overclaimed\n"
                          s.Fpvm.Stats.fpa_sub_violations
                          s.Fpvm.Stats.fpa_nan_violations;
                      `Ok 5
                    end
                    else `Ok code
                  in
                  if arith = "native" then
                    finish (Fpvm.Engine.run_native ~cost prog)
                  else if record_file <> "" then
                    guard (fun () ->
                    let rec_ =
                      d.d_record ?facts ?instrument ?artifacts:cache_art
                        ~checkpoint_every ~meta ~config prog
                    in
                    let log_bytes =
                      if inject >= 0 then inject_divergence rec_.Replay.Session.log_bytes inject
                      else rec_.Replay.Session.log_bytes
                    in
                    Replay.Codec.write_file record_file log_bytes;
                    List.iter
                      (fun (seq, blob) ->
                        Replay.Codec.write_file
                          (Printf.sprintf "%s.ckpt%d" record_file seq)
                          blob)
                      rec_.Replay.Session.checkpoints;
                    finish rec_.Replay.Session.result)
                  else if replay_file <> "" then
                    guard (fun () ->
                        let log = Replay.Log.of_file replay_file in
                        if not (Replay.Log.meta_equal log.Replay.Log.meta meta)
                        then
                          `Error
                            ( false,
                              Format.asprintf
                                "log/flag mismatch:@.  log:   %a@.  flags: %a@.(replay with the flags the log was recorded with)"
                                Replay.Log.pp_meta log.Replay.Log.meta
                                Replay.Log.pp_meta meta )
                        else
                          let checkpoint =
                            if from_checkpoint = "" then None
                            else Some (Replay.Codec.read_file from_checkpoint)
                          in
                          match
                            d.d_replay ?checkpoint ?instrument ~config log
                              prog
                          with
                          | Replay.Session.Match r ->
                              Printf.eprintf "replay: %d events matched\n"
                                (Array.length log.Replay.Log.events);
                              finish r
                          | Replay.Session.Diverged dv ->
                              Format.eprintf "%a"
                                (Replay.Session.pp_divergence ~prog) dv;
                              `Ok 3)
                  else if from_checkpoint <> "" then
                    guard (fun () ->
                        finish
                          (d.d_resume ?instrument ?artifacts:cache_art ~config
                             prog
                             (Replay.Codec.read_file from_checkpoint)))
                  else
                    finish
                      (d.d_run ?facts ?instrument ?artifacts:cache_art ~config
                         prog)))
  end

(* ---- bisect command --------------------------------------------------- *)

let bisect log_a log_b arch_only =
  let a = Replay.Log.of_file log_a and b = Replay.Log.of_file log_b in
  let mode = if arch_only then Replay.Bisect.Arch else Replay.Bisect.Exact in
  let prog =
    (* decode faulting instructions in the report when the logs name a
       workload we can rebuild *)
    if a.Replay.Log.meta.Replay.Log.workload = b.Replay.Log.meta.Replay.Log.workload
    then
      match W.find a.Replay.Log.meta.Replay.Log.workload with
      | Some e ->
          Some
            (e.W.program
               (if a.Replay.Log.meta.Replay.Log.scale = "s" then W.S else W.Test))
      | None -> None
    else None
  in
  let d = Replay.Bisect.first_divergence ~mode a b in
  print_string (Replay.Bisect.report ?prog a b d);
  `Ok (match d with None -> 0 | Some _ -> 4)

(* ---- analyze command -------------------------------------------------- *)

(* Static-analysis report: run the tiered pipeline and the legacy
   flow-insensitive pass over workload binaries without executing them,
   and emit per-workload precision data (sinks with their taint
   provenance, proven-safe loads, old-vs-new deltas) as JSON. With
   --check, also compare against a committed golden file and exit 6 on
   any precision regression. *)

module AP = Analysis.Pipeline

let insn_text (prog : Machine.Program.t) i =
  Format.asprintf "%a" Machine.Isa.pp_insn
    (Machine.Program.strip_insn prog.Machine.Program.insns.(i))

let sink_kind_name = function
  | AP.K_int_load -> "int_load"
  | AP.K_movq -> "movq_gpr_xmm"
  | AP.K_fp_bit -> "fp_bitop"

let analyze_json (results : (W.entry * Machine.Program.t * Fpvm.Vsa.analysis * Analysis.Legacy.analysis) list) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"workloads\": [\n";
  List.iteri
    (fun wi (e, prog, (a : Fpvm.Vsa.analysis), (l : Analysis.Legacy.analysis)) ->
      let p = a.Fpvm.Vsa.pipeline in
      if wi > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": \"%s\",\n      \"insns\": %d, \"blocks\": %d, \"loop_heads\": %d, \"iterations\": %d, \"bailed_out\": %b,\n"
           (json_escape e.W.name)
           (Array.length prog.Machine.Program.insns)
           p.AP.n_blocks p.AP.n_loop_heads p.AP.iterations p.AP.bailed_out);
      Buffer.add_string b
        (Printf.sprintf
           "      \"total_int_loads\": %d, \"proven_safe_loads\": %d, \"trap_checks_elided\": %d,\n"
           p.AP.total_int_loads p.AP.proven_safe_loads p.AP.trap_checks_elided);
      Buffer.add_string b
        (Printf.sprintf
           "      \"legacy\": { \"sinks\": %d, \"proven_safe_loads\": %d },\n\
           \      \"delta_proven_safe\": %d, \"delta_sinks\": %d,\n"
           (List.length l.Analysis.Legacy.sinks)
           l.Analysis.Legacy.proven_safe_loads
           (p.AP.proven_safe_loads - l.Analysis.Legacy.proven_safe_loads)
           (List.length l.Analysis.Legacy.sinks - List.length p.AP.sinks));
      Buffer.add_string b "      \"sinks\": [";
      List.iteri
        (fun si (s : AP.sink) ->
          if si > 0 then Buffer.add_string b ",";
          Buffer.add_string b
            (Printf.sprintf
               "\n        { \"index\": %d, \"kind\": \"%s\", \"insn\": \"%s\",\n\
               \          \"sources\": ["
               s.AP.sink_index (sink_kind_name s.AP.kind)
               (json_escape (insn_text prog s.AP.sink_index)));
          List.iteri
            (fun qi q ->
              if qi > 0 then Buffer.add_string b ", ";
              Buffer.add_string b
                (Printf.sprintf "{ \"index\": %d, \"insn\": \"%s\" }" q
                   (json_escape (insn_text prog q))))
            s.AP.srcs;
          Buffer.add_string b "] }")
        p.AP.sinks;
      Buffer.add_string b " ],\n";
      (* FP special-value tier: per-site verdicts with provenance. *)
      let f = a.Fpvm.Vsa.fpa in
      Buffer.add_string b
        (Printf.sprintf
           "      \"fp\": { \"sites\": %d, \"sub_free\": %d, \"born_free\": \
            %d, \"proven\": %d, \"bailed_out\": %b,\n\
           \        \"verdicts\": ["
           f.Analysis.Fpa.sites f.Analysis.Fpa.sub_free
           f.Analysis.Fpa.born_free f.Analysis.Fpa.proven
           f.Analysis.Fpa.bailed_out);
      Array.iteri
        (fun vi (v : Analysis.Fpa.verdict) ->
          if vi > 0 then Buffer.add_string b ",";
          Buffer.add_string b
            (Printf.sprintf
               "\n          { \"index\": %d, \"insn\": \"%s\", \"sub_free\": \
                %b, \"born_free\": %b, \"risks\": [%s], \"srcs\": [%s] }"
               v.Analysis.Fpa.v_index
               (json_escape (insn_text prog v.Analysis.Fpa.v_index))
               v.Analysis.Fpa.v_sub_free v.Analysis.Fpa.v_born_free
               (String.concat ", "
                  (List.map
                     (fun r -> Printf.sprintf "\"%s\"" (json_escape r))
                     v.Analysis.Fpa.v_risks))
               (String.concat ", "
                  (List.map string_of_int v.Analysis.Fpa.v_srcs))))
        f.Analysis.Fpa.verdicts;
      Buffer.add_string b "] } }")
    results;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* Golden format: one
   "name|sinks|total_int_loads|proven_safe|fp_sites|fp_sub_free|fp_born_free"
   line per workload. A regression is strictly more sinks, strictly
   fewer proven-safe loads, or strictly fewer FP sites proven
   subnormal-free / birth-free than the committed counts; improvements
   are reported but pass (refresh the golden file to lock them in). *)
let check_golden results file =
  let lines = ref [] in
  let ic = open_in file in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         match String.split_on_char '|' line with
         | [ name; sinks; total; proven; fp_sites; fp_sub; fp_born ] ->
             lines :=
               (name, int_of_string sinks, int_of_string total,
                int_of_string proven, int_of_string fp_sites,
                int_of_string fp_sub, int_of_string fp_born)
               :: !lines
         | _ -> failwith (Printf.sprintf "%s: malformed golden line %S" file line)
     done
   with End_of_file -> ());
  close_in ic;
  let failures = ref 0 in
  List.iter
    (fun (name, gsinks, gtotal, gproven, gfp_sites, gfp_sub, gfp_born) ->
      match
        List.find_opt (fun (e, _, _, _) -> e.W.name = name) results
      with
      | None ->
          incr failures;
          Printf.eprintf "FAIL %-12s missing from analysis results\n" name
      | Some (_, _, a, _) ->
          let p = a.Fpvm.Vsa.pipeline in
          let f = a.Fpvm.Vsa.fpa in
          let nsinks = List.length p.AP.sinks in
          if nsinks > gsinks || p.AP.proven_safe_loads < gproven then begin
            incr failures;
            Printf.eprintf
              "FAIL %-12s sinks %d (golden %d), proven %d (golden %d)\n" name
              nsinks gsinks p.AP.proven_safe_loads gproven
          end
          else if p.AP.total_int_loads <> gtotal then begin
            incr failures;
            Printf.eprintf
              "FAIL %-12s total_int_loads %d != golden %d (workload changed? refresh the golden file)\n"
              name p.AP.total_int_loads gtotal
          end
          else if
            f.Analysis.Fpa.sub_free < gfp_sub
            || f.Analysis.Fpa.born_free < gfp_born
          then begin
            incr failures;
            Printf.eprintf
              "FAIL %-12s fp sub_free %d (golden %d), born_free %d (golden %d)\n"
              name f.Analysis.Fpa.sub_free gfp_sub f.Analysis.Fpa.born_free
              gfp_born
          end
          else if f.Analysis.Fpa.sites <> gfp_sites then begin
            incr failures;
            Printf.eprintf
              "FAIL %-12s fp_sites %d != golden %d (workload changed? refresh the golden file)\n"
              name f.Analysis.Fpa.sites gfp_sites
          end
          else
            Printf.eprintf
              "ok   %-12s sinks %d/%d proven %d/%d fp %d+%d/%d\n" name nsinks
              gsinks p.AP.proven_safe_loads p.AP.total_int_loads
              f.Analysis.Fpa.sub_free f.Analysis.Fpa.born_free
              f.Analysis.Fpa.sites)
    (List.rev !lines);
  !failures

let analyze only check =
  let entries =
    match only with
    | "" -> Ok W.all
    | name -> (
        match W.find name with
        | Some e -> Ok [ e ]
        | None ->
            Error (Printf.sprintf "unknown workload %S (try --list)" name))
  in
  match entries with
  | Error m -> `Error (false, m)
  | Ok entries ->
      let results =
        List.map
          (fun (e : W.entry) ->
            let prog = e.W.program W.Test in
            (e, prog, Fpvm.Vsa.analyze prog, Analysis.Legacy.analyze prog))
          entries
      in
      print_string (analyze_json results);
      if check = "" then `Ok 0
      else
        guard (fun () ->
            let failures = check_golden results check in
            if failures > 0 then begin
              Printf.eprintf
                "analysis precision regressed on %d workload(s) vs %s\n"
                failures check;
              `Ok 6
            end
            else `Ok 0)

(* ---- lint command ----------------------------------------------------- *)

(* Static FP lint: walk the FP special-value tier's verdicts and warn,
   per site, about potential NaN/Inf births and subnormal inputs the
   analysis could not rule out — with the provenance path (the input
   sites the risk flows from) and a suggested record/replay bisect
   recipe for localizing the first divergent event dynamically. *)
let lint_hint name =
  Printf.sprintf
    "fpvm_run -w \"%s\" --record base.log && fpvm_run -w \"%s\" -a mpfr \
     --prec 50 --record alt.log && fpvm_run bisect --arch-only base.log \
     alt.log"
    name name

let lint only json check =
  let entries =
    match only with
    | "" -> Ok W.all
    | name -> (
        match W.find name with
        | Some e -> Ok [ e ]
        | None ->
            Error (Printf.sprintf "unknown workload %S (try --list)" name))
  in
  match entries with
  | Error m -> `Error (false, m)
  | Ok entries ->
      let results =
        List.map
          (fun (e : W.entry) ->
            let prog = e.W.program W.Test in
            (e, prog, (Fpvm.Vsa.analyze prog).Fpvm.Vsa.fpa))
          entries
      in
      let warn_sites (f : Analysis.Fpa.t) =
        Array.to_list f.Analysis.Fpa.verdicts
        |> List.filter (fun (v : Analysis.Fpa.verdict) ->
               not (v.Analysis.Fpa.v_sub_free && v.Analysis.Fpa.v_born_free))
      in
      if json then begin
        let b = Buffer.create 4096 in
        Buffer.add_string b "{\n  \"schema_version\": 1,\n  \"workloads\": [\n";
        List.iteri
          (fun wi (e, prog, (f : Analysis.Fpa.t)) ->
            if wi > 0 then Buffer.add_string b ",\n";
            Buffer.add_string b
              (Printf.sprintf
                 "    { \"name\": \"%s\", \"sites\": %d, \"sub_free\": %d, \
                  \"born_free\": %d, \"proven\": %d, \"hint\": \"%s\",\n\
                 \      \"warnings\": ["
                 (json_escape e.W.name) f.Analysis.Fpa.sites
                 f.Analysis.Fpa.sub_free f.Analysis.Fpa.born_free
                 f.Analysis.Fpa.proven
                 (json_escape (lint_hint e.W.name)));
            List.iteri
              (fun vi (v : Analysis.Fpa.verdict) ->
                if vi > 0 then Buffer.add_string b ",";
                Buffer.add_string b
                  (Printf.sprintf
                     "\n        { \"index\": %d, \"insn\": \"%s\", \
                      \"sub_free\": %b, \"born_free\": %b, \"risks\": [%s], \
                      \"provenance\": [%s] }"
                     v.Analysis.Fpa.v_index
                     (json_escape (insn_text prog v.Analysis.Fpa.v_index))
                     v.Analysis.Fpa.v_sub_free v.Analysis.Fpa.v_born_free
                     (String.concat ", "
                        (List.map
                           (fun r ->
                             Printf.sprintf "\"%s\"" (json_escape r))
                           v.Analysis.Fpa.v_risks))
                     (String.concat ", "
                        (List.map
                           (fun q ->
                             Printf.sprintf
                               "{ \"index\": %d, \"insn\": \"%s\" }" q
                               (json_escape (insn_text prog q)))
                           v.Analysis.Fpa.v_srcs))))
              (warn_sites f);
            Buffer.add_string b "] }")
          results;
        Buffer.add_string b "\n  ]\n}\n";
        print_string (Buffer.contents b)
      end
      else
        List.iter
          (fun (e, prog, (f : Analysis.Fpa.t)) ->
            Printf.printf
              "%s: %d FP sites, %d subnormal-free, %d birth-free, %d with at \
               least one proof\n"
              e.W.name f.Analysis.Fpa.sites f.Analysis.Fpa.sub_free
              f.Analysis.Fpa.born_free f.Analysis.Fpa.proven;
            let warns = warn_sites f in
            List.iter
              (fun (v : Analysis.Fpa.verdict) ->
                Printf.printf "  WARN [%4d] %s\n" v.Analysis.Fpa.v_index
                  (insn_text prog v.Analysis.Fpa.v_index);
                Printf.printf "       risks: %s\n"
                  (String.concat ", " v.Analysis.Fpa.v_risks);
                if v.Analysis.Fpa.v_srcs <> [] then
                  Printf.printf "       from:  %s\n"
                    (String.concat "; "
                       (List.map
                          (fun q ->
                            Printf.sprintf "[%d] %s" q (insn_text prog q))
                          v.Analysis.Fpa.v_srcs)))
              warns;
            if warns <> [] then
              Printf.printf "  hint: %s\n" (lint_hint e.W.name))
          results;
      if check = "" then `Ok 0
      else
        guard (fun () ->
            (* Golden ratchet: "name|sites|sub_free|born_free" per
               workload; exit 8 if any proven count decreases. *)
            let lines = ref [] in
            let ic = open_in check in
            (try
               while true do
                 let line = String.trim (input_line ic) in
                 if line <> "" && line.[0] <> '#' then
                   match String.split_on_char '|' line with
                   | [ name; sites; sub; born ] ->
                       lines :=
                         (name, int_of_string sites, int_of_string sub,
                          int_of_string born)
                         :: !lines
                   | _ ->
                       failwith
                         (Printf.sprintf "%s: malformed golden line %S" check
                            line)
               done
             with End_of_file -> ());
            close_in ic;
            let failures = ref 0 in
            List.iter
              (fun (name, gsites, gsub, gborn) ->
                match
                  List.find_opt (fun (e, _, _) -> e.W.name = name) results
                with
                | None ->
                    incr failures;
                    Printf.eprintf "FAIL %-12s missing from lint results\n"
                      name
                | Some (_, _, f) ->
                    if
                      f.Analysis.Fpa.sub_free < gsub
                      || f.Analysis.Fpa.born_free < gborn
                    then begin
                      incr failures;
                      Printf.eprintf
                        "FAIL %-12s sub_free %d (golden %d), born_free %d \
                         (golden %d)\n"
                        name f.Analysis.Fpa.sub_free gsub
                        f.Analysis.Fpa.born_free gborn
                    end
                    else if f.Analysis.Fpa.sites <> gsites then begin
                      incr failures;
                      Printf.eprintf
                        "FAIL %-12s sites %d != golden %d (workload changed? \
                         refresh the golden file)\n"
                        name f.Analysis.Fpa.sites gsites
                    end
                    else
                      Printf.eprintf "ok   %-12s fp %d+%d/%d\n" name
                        f.Analysis.Fpa.sub_free f.Analysis.Fpa.born_free
                        f.Analysis.Fpa.sites)
              (List.rev !lines);
            if !failures > 0 then begin
              Printf.eprintf "lint proven-site counts regressed on %d \
                              workload(s) vs %s\n"
                !failures check;
              `Ok 8
            end
            else `Ok 0)

(* ---- coach command ---------------------------------------------------- *)

(* Flight-recorder triage report: run the workload once under the
   flight recorder (recording the event log in memory so birth events
   carry replay positions), then print, per surviving NaN/Inf flow,
   where it was born (disassembly, static FPA risk tags and
   provenance), where it died, how long the chain was — and a
   ready-to-run record/record/bisect recipe whose injected divergence
   sits exactly on the birth event, so the bisector's prefix-digest
   search lands on it. With --ground-truth interval the workload is
   re-run on the interval port and each flow is labeled REAL (the
   rigorous enclosure also excepts or becomes unbounded at that birth
   site) or SPURIOUS (the enclosure stays bounded: a precision
   artifact of the port under test). *)

module FR = Telemetry.Flowrec

let coach_flags ~wname ~arith ~prec ~posit_bits ~scale ~full_gc ~inject_nan =
  let b = Buffer.create 64 in
  Buffer.add_string b
    (if String.contains wname ' ' then Printf.sprintf "-w \"%s\"" wname
     else Printf.sprintf "-w %s" wname);
  (match arith with
  | "mpfr" | "slash" -> Buffer.add_string b (Printf.sprintf " -a %s --prec %d" arith prec)
  | "posit" -> Buffer.add_string b (Printf.sprintf " -a posit --posit %d" posit_bits)
  | a -> Buffer.add_string b (Printf.sprintf " -a %s" a));
  if scale = "s" then Buffer.add_string b " --scale s";
  if full_gc then Buffer.add_string b " --full-gc";
  if inject_nan >= 0 then
    Buffer.add_string b (Printf.sprintf " --inject-nan %d" inject_nan);
  Buffer.contents b

let coach workload arith prec posit_bits scale full_gc ground_truth
    flow_capacity inject_nan =
  let arith = String.lowercase_ascii arith in
  if arith = "native" then
    `Error (false, "coach requires an FPVM arithmetic, not native")
  else if prec < 2 then
    `Error (false, Printf.sprintf "--prec must be >= 2 (got %d)" prec)
  else if not (List.mem posit_bits [ 8; 16; 32 ]) then
    `Error (false, Printf.sprintf "--posit must be 8, 16 or 32 (got %d)" posit_bits)
  else if not (List.mem ground_truth [ ""; "interval" ]) then
    `Error
      ( false,
        Printf.sprintf "unknown --ground-truth %S (only: interval)"
          ground_truth )
  else
    match W.find workload with
    | None ->
        `Error (false, Printf.sprintf "unknown workload %S (try --list)" workload)
    | Some e -> (
        match Fleet.Port.of_flags ~arith ~prec ~posit:posit_bits with
        | Error m -> `Error (false, m)
        | Ok port -> (
            let d = Fleet.port_driver port in
            let wscale = if scale = "s" then W.S else W.Test in
            match
              (try
                 Ok
                   (let p = e.W.program wscale in
                    if inject_nan >= 0 then
                      Machine.Program.inject_nan p ~nth:inject_nan
                    else p)
               with Invalid_argument m -> Error m)
            with
            | Error m -> `Error (false, m)
            | Ok prog ->
            let config =
              { Fpvm.Engine.default_config with
                Fpvm.Engine.incremental_gc = not full_gc }
            in
            let facts = Fpvm.Vsa.analyze prog in
            let fpa = facts.Fpvm.Vsa.fpa in
            let risk_of = Hashtbl.create 64 in
            Array.iter
              (fun (v : Analysis.Fpa.verdict) ->
                Hashtbl.replace risk_of v.Analysis.Fpa.v_index
                  (v.Analysis.Fpa.v_risks, v.Analysis.Fpa.v_srcs))
              fpa.Analysis.Fpa.verdicts;
            let itext i =
              if i >= 0 && i < Array.length prog.Machine.Program.insns then
                insn_text prog i
              else "?"
            in
            let meta =
              { Replay.Log.workload = e.W.name;
                scale;
                arith =
                  (match arith with
                  | "mpfr" | "slash" -> Printf.sprintf "%s:%d" arith prec
                  | "posit" -> Printf.sprintf "posit:%d" posit_bits
                  | a -> a);
                config =
                  (config_fingerprint config "r815"
                  ^
                  if inject_nan >= 0 then
                    Printf.sprintf ";injnan=%d" inject_nan
                  else "") }
            in
            guard (fun () ->
                let tel = Telemetry.create ~flows:true ?flow_capacity () in
                let rec_ =
                  d.d_record ~facts
                    ~instrument:(fun sink -> Telemetry.attach tel sink)
                    ~checkpoint_every:0 ~meta ~config prog
                in
                let r = rec_.Replay.Session.result in
                Telemetry.finalize tel r.Fpvm.Engine.stats;
                let fr =
                  match tel.Telemetry.flows with
                  | Some fr -> fr
                  | None -> assert false
                in
                (* Ground truth: the same binary on the rigorous interval
                   port (its own deterministic run; an unbounded enclosure
                   demotes to Inf/NaN, so it surfaces as a birth). *)
                let truth =
                  if ground_truth = "" then None
                  else
                    match
                      Fleet.Port.of_flags ~arith:"interval" ~prec
                        ~posit:posit_bits
                    with
                    | Error m -> failwith m
                    | Ok iport ->
                        let tel2 = Telemetry.create ~flows:true () in
                        let d2 = Fleet.port_driver iport in
                        let r2 =
                          d2.d_run ~facts
                            ~instrument:(fun sink ->
                              Telemetry.attach tel2 sink)
                            ~config prog
                        in
                        ignore r2;
                        let fr2 =
                          match tel2.Telemetry.flows with
                          | Some f -> f
                          | None -> assert false
                        in
                        let sites = FR.birth_sites fr2 in
                        FR.label_truth fr (fun site ->
                            Hashtbl.mem sites site);
                        Some (FR.truth_counts fr)
                in
                let opn, comp, drop = FR.gauges fr in
                Printf.printf
                  "coach: %s under %s — %d flow(s): %d completed, %d open, \
                   %d dropped\n"
                  e.W.name meta.Replay.Log.arith (FR.n_flows fr) comp opn drop;
                (match truth with
                | Some (real, spur) ->
                    Printf.printf
                      "ground truth (interval port): %d real / %d spurious\n"
                      real spur
                | None -> ());
                let surv = FR.all_flows fr in
                if surv = [] then
                  print_string "no NaN/Inf flows observed; nothing to coach\n";
                let flags =
                  coach_flags ~wname:e.W.name ~arith ~prec ~posit_bits ~scale
                    ~full_gc ~inject_nan
                in
                List.iter
                  (fun (f : FR.flow) ->
                    let bb = Buffer.create 256 in
                    FR.pp_flow_line bb f;
                    print_string (Buffer.contents bb);
                    Printf.printf "  birth [%4d] %s\n" f.FR.fl_birth_site
                      (itext f.FR.fl_birth_site);
                    (match Hashtbl.find_opt risk_of f.FR.fl_birth_site with
                    | Some (risks, srcs) ->
                        if risks <> [] then
                          Printf.printf "    risks: %s\n"
                            (String.concat ", " risks);
                        if srcs <> [] then
                          Printf.printf "    from:  %s\n"
                            (String.concat "; "
                               (List.map
                                  (fun q ->
                                    Printf.sprintf "[%d] %s" q (itext q))
                                  srcs))
                    | None -> ());
                    if f.FR.fl_kill_site >= 0 then
                      Printf.printf "  kill  [%4d] %s (%s)\n"
                        f.FR.fl_kill_site (itext f.FR.fl_kill_site)
                        (FR.kill_kind_name f.FR.fl_kill_kind)
                    else print_string "  kill  still open at exit\n";
                    if f.FR.fl_dropped then
                      print_string
                        "  chain: per-link detail overwritten in the ring \
                         (metadata above is exact; raise --flow-capacity \
                         for the full chain)\n";
                    (match f.FR.fl_real with
                    | 1 ->
                        print_string
                          "  label: REAL — the interval port also excepts \
                           at this birth site\n"
                    | 0 ->
                        print_string
                          "  label: SPURIOUS — the interval enclosure stays \
                           bounded here (precision artifact of the port \
                           under test)\n"
                    | _ -> ());
                    Printf.printf
                      "  bisect: fpvm_run %s --record base.log && fpvm_run \
                       %s --record inj.log --inject-divergence %d && \
                       fpvm_run bisect base.log inj.log\n"
                      flags flags f.FR.fl_birth_event)
                  surv;
                `Ok 0)))

open Cmdliner

let workload =
  Arg.(value & opt string "lorenz" & info [ "w"; "workload" ] ~doc:"Workload name (see --list).")

let arith =
  Arg.(value & opt string "vanilla"
       & info [ "a"; "arith" ] ~doc:"Arithmetic: native, vanilla, mpfr, posit, interval, slash.")

let prec =
  Arg.(value & opt int 200 & info [ "prec" ] ~doc:"Precision in bits (mpfr significand / slash num+den budget).")

let posit_bits =
  Arg.(value & opt int 32 & info [ "posit" ] ~doc:"Posit width (8, 16, 32).")

let approach =
  Arg.(value & opt string "emulate"
       & info [ "approach" ] ~doc:"FPVM approach: emulate, patch, static.")

let machine =
  Arg.(value & opt string "r815" & info [ "machine" ] ~doc:"Cost model: r815, 7220, r730xd.")

let deployment =
  Arg.(value & opt string "user"
       & info [ "deployment" ] ~doc:"Trap delivery: user, kernel, uu.")

let scale =
  Arg.(value & opt string "test" & info [ "scale" ] ~doc:"Problem scale: test or s.")

let trace_len =
  Arg.(value & opt int 64
       & info [ "trace-len" ]
           ~doc:"Max instructions emulated per trap delivery (1 = classic single-step).")

let full_gc =
  Arg.(value & flag
       & info [ "full-gc" ]
           ~doc:"Disable the incremental (dirty-card) GC; full scan every pass.")

let gc_interval =
  Arg.(value & opt int Fpvm.Engine.default_config.Fpvm.Engine.gc_interval
       & info [ "gc-interval" ] ~doc:"Emulated instructions between GC passes.")

let no_plans =
  Arg.(value & flag
       & info [ "no-plans" ]
           ~doc:"Disable site-specialized emulation (the binding-plan cache \
                 and in-trace shadow-temp elision); reproduces the \
                 unspecialized engine bit- and cycle-exactly.")

let no_jit =
  Arg.(value & flag
       & info [ "no-jit" ]
           ~doc:"Disable the trace JIT (compiled guarded superblocks with \
                 trace-to-trace linking); reproduces the plans-only engine \
                 bit-exactly.")

let jit_threshold =
  Arg.(value
       & opt int Fpvm.Engine.default_config.Fpvm.Engine.jit_threshold
       & info [ "jit-threshold" ]
           ~doc:"Trap deliveries at one trace head before its next window \
                 is recorded and compiled into a superblock." ~docv:"N")

let jit_max_trace_len =
  Arg.(value
       & opt int Fpvm.Engine.default_config.Fpvm.Engine.jit_max_trace_len
       & info [ "jit-max-trace-len" ]
           ~doc:"Cap (>= 1) on the recorded window length handed to the \
                 superblock compiler; recordings longer than this are \
                 truncated before lowering." ~docv:"N")

let cache_dir =
  Arg.(value & opt string ""
       & info [ "cache-dir" ]
           ~doc:"Directory for the persistent compilation-artifact cache \
                 (default: \\$XDG_CACHE_HOME/fpvm or ~/.cache/fpvm). A warm \
                 run reuses the cold run's analysis facts and superblock \
                 recordings; outputs and fingerprints are bit-identical \
                 either way." ~docv:"DIR")

let no_cache =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Disable the persistent compilation-artifact cache (neither \
                 load nor save).")

let no_fpa =
  Arg.(value & flag
       & info [ "no-fpa" ]
           ~doc:"Disable the FP special-value analysis tier (escape hatch): \
                 the JIT falls back to runtime subnormal guards and no \
                 shadow checks are elided. Outputs are bit-identical with \
                 the tier on or off.")

let oracle =
  Arg.(value & flag
       & info [ "oracle" ]
           ~doc:"Soundness oracle: watch every dispatched instruction for an \
                 unpatched integer load observing a live NaN-boxed value, \
                 and every statically-proven-clean site for a dynamic \
                 NaN/Inf birth or subnormal raw input; exit 5 if any is \
                 seen (a static-analysis false negative).")

let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print FPVM statistics to stderr.")
let json = Arg.(value & flag & info [ "json" ] ~doc:"Print machine-readable run statistics (JSON) to stdout.")
let disasm = Arg.(value & flag & info [ "disasm" ] ~doc:"Disassemble the workload binary and exit.")
let spy = Arg.(value & flag & info [ "spy" ] ~doc:"FPSpy mode: profile FP events without emulating.")
let list_only = Arg.(value & flag & info [ "list" ] ~doc:"List available workloads and exit.")

let record_file =
  Arg.(value & opt string "" & info [ "record" ] ~doc:"Record the execution's event log to $(docv)." ~docv:"FILE")

let replay_file =
  Arg.(value & opt string ""
       & info [ "replay" ]
           ~doc:"Re-execute and validate every event against the log in $(docv); exit 3 on divergence." ~docv:"FILE")

let checkpoint_every =
  Arg.(value & opt int 0
       & info [ "checkpoint-every" ]
           ~doc:"With --record: write a full checkpoint every $(docv) events (0 = never) to FILE.ckptN." ~docv:"N")

let from_checkpoint =
  Arg.(value & opt string ""
       & info [ "from-checkpoint" ]
           ~doc:"Restore the checkpoint in $(docv) and resume (with --replay: validate from there)." ~docv:"FILE")

let inject =
  Arg.(value & opt int (-1)
       & info [ "inject-divergence" ]
           ~doc:"With --record: corrupt the state digest of event $(docv) in the written log (bisector self-test)." ~docv:"N")

let inject_nan_arg =
  Arg.(value & opt int (-1)
       & info [ "inject-nan" ]
           ~doc:"Seed a NaN: retarget the $(docv)-th eligible scalar FP \
                 instruction (0-based) to a stub computing 0/0 into its \
                 destination, so a NaN is born at a known site and flows \
                 from there (flight-recorder smoke harness). Affects the \
                 executed binary; record/replay logs carry the setting in \
                 their config line." ~docv:"K")

let trace_out =
  Arg.(value & opt string ""
       & info [ "trace-out" ]
           ~doc:"Export a Chrome/Perfetto trace-event JSON timeline (modeled-cycle \
                 timestamps) of the run to $(docv)." ~docv:"FILE")

let profile =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Print a per-site hot-spot profile (cycle attribution by \
                 instruction index) to stderr.")

let profile_out =
  Arg.(value & opt string ""
       & info [ "profile-out" ]
           ~doc:"Write the per-site profile as JSON to $(docv)." ~docv:"FILE")

let shadow_check =
  Arg.(value & flag
       & info [ "shadow-check" ]
           ~doc:"Numerical telemetry: track NaN/Inf births, kills and \
                 propagation per site, and compare the alternative \
                 arithmetic against a vanilla binary64 shadow at every \
                 demotion boundary (relative-error histogram on stderr).")

let flows_flag =
  Arg.(value & flag
       & info [ "flows" ]
           ~doc:"Attach the FP-exception flight recorder: assign each \
                 NaN/Inf birth a flow id, chain its propagations to the op \
                 or observation that kills it, and report the flow gauges \
                 (with --trace-out: draw the chains as Perfetto flow \
                 arrows). Observation only — the stats fingerprint is \
                 unchanged.")

let flow_capacity_arg =
  Arg.(value & opt (some int) None
       & info [ "flow-capacity" ]
           ~doc:"Flight-recorder chain-link ring capacity (default 4096); \
                 when the ring wraps, the oldest chain's link detail is \
                 dropped whole (flow metadata survives)." ~docv:"N")

let run_term =
  Term.(
    ret
      (const run $ workload $ arith $ prec $ posit_bits $ approach $ machine
     $ deployment $ scale $ trace_len $ full_gc $ gc_interval $ no_plans
     $ no_jit $ jit_threshold $ jit_max_trace_len $ no_fpa
     $ oracle $ stats $ json $ disasm $ spy $ list_only $ record_file
     $ replay_file $ checkpoint_every $ from_checkpoint $ inject
     $ inject_nan_arg $ trace_out $ profile $ profile_out $ shadow_check
     $ flows_flag $ flow_capacity_arg $ cache_dir $ no_cache))

let bisect_cmd =
  let log_a = Arg.(required & pos 0 (some string) None & info [] ~docv:"LOG_A") in
  let log_b = Arg.(required & pos 1 (some string) None & info [] ~docv:"LOG_B") in
  let arch_only =
    Arg.(value & flag
         & info [ "arch-only" ]
             ~doc:"Compare the config-invariant view: GC events dropped, delivered/absorbed faults unified.")
  in
  Cmd.v
    (Cmd.info "bisect"
       ~doc:"binary-search two event logs for their first diverging event (exit 4 if they diverge)")
    Term.(ret (const bisect $ log_a $ log_b $ arch_only))

let analyze_cmd =
  let only =
    Arg.(value & opt string ""
         & info [ "w"; "workload" ]
             ~doc:"Analyze only this workload (default: all).")
  in
  let check =
    Arg.(value & opt string ""
         & info [ "check" ]
             ~doc:"Compare sink/proven-safe counts against the golden file \
                   $(docv); exit 6 on any precision regression." ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"run the static analysis over workload binaries (no execution) and report precision as JSON")
    Term.(ret (const analyze $ only $ check))

let lint_cmd =
  let only =
    Arg.(value & opt string ""
         & info [ "w"; "workload" ]
             ~doc:"Lint only this workload (default: all).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the lint report as JSON to stdout.")
  in
  let check =
    Arg.(value & opt string ""
         & info [ "check" ]
             ~doc:"Compare proven-site counts against the golden file \
                   $(docv); exit 8 on any ratchet regression." ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"statically lint workloads for potential NaN/Inf/subnormal \
             births (per-site warnings with provenance, no execution)")
    Term.(ret (const lint $ only $ json $ check))

let coach_cmd =
  let ground_truth =
    Arg.(value & opt string ""
         & info [ "ground-truth" ]
             ~doc:"Label each flow against a rigorous port: $(docv) \
                   (currently only \"interval\") re-runs the workload on \
                   the directed-rounding interval port and marks a flow \
                   REAL if the enclosure also excepts (or is unbounded) at \
                   its birth site, SPURIOUS otherwise." ~docv:"PORT")
  in
  let flow_capacity =
    Arg.(value & opt (some int) None
         & info [ "flow-capacity" ]
             ~doc:"Chain-link ring capacity (default 4096); when the ring \
                   wraps, the oldest chain is dropped whole." ~docv:"N")
  in
  Cmd.v
    (Cmd.info "coach"
       ~doc:"run a workload under the FP-exception flight recorder and \
             report, per NaN/Inf flow, its birth site (with disassembly, \
             static risk tags and provenance), kill site, chain length and \
             a ready-to-run replay-bisect recipe that lands on the birth \
             event")
    Term.(
      ret
        (const coach $ workload $ arith $ prec $ posit_bits $ scale
       $ full_gc $ ground_truth $ flow_capacity $ inject_nan_arg))

let cmd =
  let doc = "run workloads under the floating point virtual machine" in
  Cmd.group ~default:run_term (Cmd.info "fpvm_run" ~doc)
    [ bisect_cmd; analyze_cmd; lint_cmd; coach_cmd ]

let () = exit (Cmd.eval' cmd)
