(* fpvm_run: the command-line face of the reproduction.

   Runs a workload binary natively or under FPVM with a chosen
   alternative arithmetic system, approach, machine model and trap
   deployment, then prints the program output and (optionally) the
   virtualization statistics.

     fpvm_run --list
     fpvm_run -w lorenz -a mpfr --prec 200 --stats
     fpvm_run -w "NAS CG" -a posit --posit 32
     fpvm_run -w three-body --approach patch --machine 7220
     fpvm_run -w lorenz --disasm | head *)

module CM = Machine.Cost_model
module W = Workloads

module E_vanilla = Fpvm.Engine.Make (Fpvm.Alt_vanilla)
module E_mpfr = Fpvm.Engine.Make (Fpvm.Alt_mpfr)
module E_posit = Fpvm.Engine.Make (Fpvm.Alt_posit)
module E_interval = Fpvm.Engine.Make (Fpvm.Alt_interval)
module E_slash = Fpvm.Engine.Make (Fpvm.Alt_slash)

let run workload arith prec posit_bits approach machine deployment scale
    trace_len full_gc stats disasm spy list_only =
  if list_only then begin
    List.iter
      (fun (e : W.entry) -> Printf.printf "%-12s %s\n" e.W.name e.W.specifics)
      W.all;
    `Ok ()
  end
  else
    match W.find workload with
    | None ->
        `Error (false, Printf.sprintf "unknown workload %S (try --list)" workload)
    | Some e ->
        let scale = if scale = "s" then W.S else W.Test in
        let prog = e.W.program scale in
        if disasm then begin
          print_string (Machine.Program.disassemble prog);
          `Ok ()
        end
        else if spy then begin
          (* FPSpy mode: profile the binary's floating point events *)
          let r = Fpvm.Fpspy.run prog in
          print_string r.Fpvm.Fpspy.run.Fpvm.Engine.output;
          Format.eprintf "--- fpspy profile ---@.%a@." Fpvm.Fpspy.pp_profile
            r.Fpvm.Fpspy.profile;
          Format.eprintf "top sites:@.";
          List.iter
            (fun (site : Fpvm.Fpspy.site) ->
              Format.eprintf "  %8d hits  [%4d] %s (%s)@."
                site.Fpvm.Fpspy.hits site.Fpvm.Fpspy.index
                site.Fpvm.Fpspy.mnemonic
                (String.concat "+" (Ieee754.Flags.names site.Fpvm.Fpspy.events)))
            (Fpvm.Fpspy.top_sites ~n:8 r.Fpvm.Fpspy.profile);
          `Ok ()
        end
        else begin
          let cost =
            match String.lowercase_ascii machine with
            | "r815" -> CM.r815
            | "7220" -> CM.xeon7220
            | "r730xd" -> CM.r730xd
            | m -> failwith ("unknown machine " ^ m)
          in
          let deployment =
            match deployment with
            | "user" -> Trapkern.User_signal
            | "kernel" -> Trapkern.Kernel_module
            | "uu" -> Trapkern.User_to_user
            | d -> failwith ("unknown deployment " ^ d)
          in
          let approach =
            match approach with
            | "emulate" -> Fpvm.Engine.Trap_and_emulate
            | "patch" -> Fpvm.Engine.Trap_and_patch
            | "static" -> Fpvm.Engine.Static_transform
            | a -> failwith ("unknown approach " ^ a)
          in
          let config =
            { Fpvm.Engine.default_config with
              Fpvm.Engine.approach; cost; deployment;
              Fpvm.Engine.max_trace_len = max 1 trace_len;
              Fpvm.Engine.incremental_gc = not full_gc }
          in
          let result =
            match String.lowercase_ascii arith with
            | "native" -> Fpvm.Engine.run_native ~cost prog
            | "vanilla" -> E_vanilla.run ~config prog
            | "mpfr" ->
                Fpvm.Alt_mpfr.precision := prec;
                E_mpfr.run ~config prog
            | "posit" ->
                Fpvm.Alt_posit.spec :=
                  (match posit_bits with
                  | 8 -> Posit.posit8
                  | 16 -> Posit.posit16
                  | 32 -> Posit.posit32
                  | n -> Posit.spec ~nbits:n ~es:2);
                E_posit.run ~config prog
            | "interval" -> E_interval.run ~config prog
            | "slash" ->
                Fpvm.Alt_slash.bits := prec;
                E_slash.run ~config prog
            | a -> failwith ("unknown arithmetic " ^ a)
          in
          print_string result.Fpvm.Engine.output;
          if stats then begin
            let s = result.Fpvm.Engine.stats in
            Printf.eprintf "--- fpvm stats ---\n";
            Printf.eprintf "instructions executed: %d (%d FP)\n"
              result.Fpvm.Engine.insns result.Fpvm.Engine.fp_insns;
            Printf.eprintf "cycles: %d\n" result.Fpvm.Engine.cycles;
            Printf.eprintf "fp traps: %d, correctness traps: %d\n"
              s.Fpvm.Stats.fp_traps s.Fpvm.Stats.correctness_traps;
            Printf.eprintf
              "traces: %d (mean len %.1f), in-trace faults absorbed: %d\n"
              s.Fpvm.Stats.traces
              (Fpvm.Stats.mean_trace_len s)
              s.Fpvm.Stats.traps_avoided;
            Printf.eprintf "emulated insns: %d, math calls: %d\n"
              s.Fpvm.Stats.emulated_insns s.Fpvm.Stats.math_calls;
            Printf.eprintf "decode cache: %d hits / %d misses\n"
              s.Fpvm.Stats.decode_hits s.Fpvm.Stats.decode_misses;
            Printf.eprintf "boxes allocated: %d, gc passes: %d, freed: %d\n"
              s.Fpvm.Stats.boxes_allocated s.Fpvm.Stats.gc_passes
              s.Fpvm.Stats.gc_freed;
            Printf.eprintf "gc: %d full passes, %d words scanned\n"
              s.Fpvm.Stats.gc_full_passes s.Fpvm.Stats.gc_words_scanned;
            let b = Fpvm.Stats.breakdown s in
            Printf.eprintf "avg cycles/virtualized insn: %.0f\n"
              b.Fpvm.Stats.avg_total
          end;
          `Ok ()
        end

open Cmdliner

let workload =
  Arg.(value & opt string "lorenz" & info [ "w"; "workload" ] ~doc:"Workload name (see --list).")

let arith =
  Arg.(value & opt string "vanilla"
       & info [ "a"; "arith" ] ~doc:"Arithmetic: native, vanilla, mpfr, posit, interval, slash.")

let prec =
  Arg.(value & opt int 200 & info [ "prec" ] ~doc:"Precision in bits (mpfr significand / slash num+den budget).")

let posit_bits =
  Arg.(value & opt int 32 & info [ "posit" ] ~doc:"Posit width (8, 16, 32).")

let approach =
  Arg.(value & opt string "emulate"
       & info [ "approach" ] ~doc:"FPVM approach: emulate, patch, static.")

let machine =
  Arg.(value & opt string "r815" & info [ "machine" ] ~doc:"Cost model: r815, 7220, r730xd.")

let deployment =
  Arg.(value & opt string "user"
       & info [ "deployment" ] ~doc:"Trap delivery: user, kernel, uu.")

let scale =
  Arg.(value & opt string "test" & info [ "scale" ] ~doc:"Problem scale: test or s.")

let trace_len =
  Arg.(value & opt int 64
       & info [ "trace-len" ]
           ~doc:"Max instructions emulated per trap delivery (1 = classic single-step).")

let full_gc =
  Arg.(value & flag
       & info [ "full-gc" ]
           ~doc:"Disable the incremental (dirty-card) GC; full scan every pass.")

let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print FPVM statistics to stderr.")
let disasm = Arg.(value & flag & info [ "disasm" ] ~doc:"Disassemble the workload binary and exit.")
let spy = Arg.(value & flag & info [ "spy" ] ~doc:"FPSpy mode: profile FP events without emulating.")
let list_only = Arg.(value & flag & info [ "list" ] ~doc:"List available workloads and exit.")

let cmd =
  let doc = "run workloads under the floating point virtual machine" in
  Cmd.v
    (Cmd.info "fpvm_run" ~doc)
    Term.(
      ret
        (const run $ workload $ arith $ prec $ posit_bits $ approach $ machine
       $ deployment $ scale $ trace_len $ full_gc $ stats $ disasm $ spy
       $ list_only))

let () = exit (Cmd.eval cmd)
