(* fpvm_serve: serve a fleet of FPVM guests across OCaml domains.

   Reads a manifest (one guest per line, key=value tokens — see
   Fleet.Manifest), partitions the guests over --domains worker
   domains, and co-schedules each domain's shard cooperatively with
   batched trap delivery. Per-guest results stream to stdout as JSON
   lines while the fleet runs; a final aggregate object reports the
   modeled makespan, switch charges and fact-store sharing.

     fpvm_serve --manifest fleet.txt --domains 4
     fpvm_serve --manifest fleet.txt --domains 2 --batch 16 --verify-solo
     fpvm_serve --manifest fleet.txt --json > fleet.json

   Every guest's stats fingerprint is bit-identical to the same
   workload/flags run solo under fpvm_run; --verify-solo re-runs each
   guest solo after the fleet and exits 7 on any mismatch. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let guest_json (r : Fleet.guest_result) =
  let g = r.Fleet.r_guest in
  Printf.sprintf
    "{\"guest\": %d, \"workload\": \"%s\", \"arith\": \"%s\", \"scale\": \
     \"%s\", \"gc\": \"%s\", \"domain\": %d, \"cycles\": %d, \"insns\": %d, \
     \"fp_insns\": %d, \"output_bytes\": %d, \"fpa_sites_proven\": %d, \
     \"fused_unguarded\": %d, \"shadow_elided\": %d, \"jit_compiles\": %d, \
     \"cache_hits\": %d, \"cache_misses\": %d, \"blocks_shared\": %d, \
     \"cyc_compile_shared\": %d, \"flows_open\": %d, \"flows_completed\": \
     %d, \"flows_dropped\": %d, \"fingerprint\": \"%s\"}"
    g.Fleet.g_id
    (json_escape g.Fleet.g_workload)
    (json_escape (Fleet.guest_arith g))
    (Fleet.scale_string g.Fleet.g_scale)
    (if g.Fleet.g_config.Fpvm.Engine.incremental_gc then "inc" else "full")
    r.Fleet.r_domain r.Fleet.r_cycles r.Fleet.r_insns r.Fleet.r_fp_insns
    (String.length r.Fleet.r_output)
    r.Fleet.r_fpa_sites_proven r.Fleet.r_fused_unguarded
    r.Fleet.r_shadow_elided r.Fleet.r_jit_compiles r.Fleet.r_cache_hits
    r.Fleet.r_cache_misses r.Fleet.r_blocks_shared r.Fleet.r_cyc_compile_shared
    r.Fleet.r_flows_open r.Fleet.r_flows_completed r.Fleet.r_flows_dropped
    (json_escape r.Fleet.r_fingerprint)

let fleet_json (f : Fleet.fleet_result) =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"schema_version\": 1,\n";
  Buffer.add_string b
    (Printf.sprintf "  \"guests\": %d,\n  \"domains\": %d,\n  \"batch\": %d,\n"
       (List.length f.Fleet.f_results)
       f.Fleet.f_domains f.Fleet.f_batch);
  Buffer.add_string b
    (Printf.sprintf
       "  \"switches\": %d,\n  \"facts_hits\": %d,\n  \"facts_misses\": %d,\n"
       f.Fleet.f_switches f.Fleet.f_facts_hits f.Fleet.f_facts_misses);
  Buffer.add_string b
    (Printf.sprintf "  \"total_cycles\": %d,\n  \"makespan\": %d,\n"
       f.Fleet.f_total_cycles f.Fleet.f_makespan);
  Buffer.add_string b
    (Printf.sprintf
       "  \"blocks_published\": %d,\n  \"blocks_shared\": %d,\n  \
        \"cyc_compile_shared\": %d,\n"
       f.Fleet.f_blocks_published f.Fleet.f_blocks_shared
       f.Fleet.f_cyc_compile_shared);
  Buffer.add_string b "  \"domain_cycles\": [";
  Array.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (string_of_int c))
    f.Fleet.f_domain_cycles;
  Buffer.add_string b "],\n  \"results\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b ("    " ^ guest_json r))
    f.Fleet.f_results;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let serve manifest domains batch switch_cost flows verify_solo json quiet =
  match Fleet.validate_serve ~domains ~batch with
  | Error m -> `Error (false, m)
  | Ok () -> (
      if manifest = "" then `Error (false, "--manifest FILE is required")
      else
        match Fleet.Manifest.load manifest with
        | Error m -> `Error (false, Printf.sprintf "%s: %s" manifest m)
        | Ok guests ->
            let on_result r =
              if not quiet then begin
                print_endline (guest_json r);
                flush stdout
              end
            in
            let fleet =
              Fleet.serve ~domains ~batch ~switch_cost ~flows ~on_result
                guests
            in
            if json then print_string (fleet_json fleet)
            else begin
              Printf.eprintf
                "fleet: %d guests on %d domain(s), batch %d: makespan %d \
                 cycles (total %d, %.2fx), %d switches, facts %d shared / %d \
                 computed, blocks %d shared / %d compiled (%d cycles \
                 off-guest)\n"
                (List.length fleet.Fleet.f_results)
                domains batch fleet.Fleet.f_makespan fleet.Fleet.f_total_cycles
                (if fleet.Fleet.f_makespan > 0 then
                   float_of_int fleet.Fleet.f_total_cycles
                   /. float_of_int fleet.Fleet.f_makespan
                 else 0.)
                fleet.Fleet.f_switches fleet.Fleet.f_facts_hits
                fleet.Fleet.f_facts_misses fleet.Fleet.f_blocks_shared
                fleet.Fleet.f_blocks_published fleet.Fleet.f_cyc_compile_shared
            end;
            if not verify_solo then `Ok 0
            else begin
              (* Identity audit: every guest re-run solo (no scheduler,
                 no shared facts) must reproduce the fleet's output and
                 stats fingerprint bit-for-bit. *)
              let mismatches = ref 0 in
              List.iter
                (fun (r : Fleet.guest_result) ->
                  let solo = Fleet.run_solo r.Fleet.r_guest in
                  let sfp = Fpvm.Stats.fingerprint solo.Fpvm.Engine.stats in
                  let ok =
                    sfp = r.Fleet.r_fingerprint
                    && solo.Fpvm.Engine.output = r.Fleet.r_output
                    && solo.Fpvm.Engine.serialized = r.Fleet.r_serialized
                    (* compile-cycle conservation: a storeless solo run
                       pays on-guest exactly what the fleet guest saw
                       elided into its off-guest bucket *)
                    && solo.Fpvm.Engine.cycles
                       = r.Fleet.r_cycles + r.Fleet.r_cyc_compile_shared
                  in
                  if not ok then begin
                    incr mismatches;
                    Printf.eprintf
                      "MISMATCH guest %d (%s %s): fleet fingerprint %s != \
                       solo %s\n"
                      r.Fleet.r_guest.Fleet.g_id
                      r.Fleet.r_guest.Fleet.g_workload
                      (Fleet.guest_arith r.Fleet.r_guest)
                      r.Fleet.r_fingerprint sfp
                  end)
                fleet.Fleet.f_results;
              if !mismatches > 0 then begin
                Printf.eprintf
                  "verify-solo: %d of %d guests diverged from their solo run\n"
                  !mismatches
                  (List.length fleet.Fleet.f_results);
                `Ok 7
              end
              else begin
                if not quiet then
                  Printf.eprintf
                    "verify-solo: all %d guests bit-identical to solo runs\n"
                    (List.length fleet.Fleet.f_results);
                `Ok 0
              end
            end)

open Cmdliner

let manifest =
  Arg.(value & opt string ""
       & info [ "m"; "manifest" ]
           ~doc:"Fleet manifest: one guest per line of key=value tokens \
                 (workload=, arith=, prec=, posit=, scale=, gc=, plans=, \
                 jit=, jit-threshold=, trace-len=, gc-interval=, count=). \
                 '#' starts a comment." ~docv:"FILE")

let domains =
  Arg.(value & opt int 1
       & info [ "d"; "domains" ]
           ~doc:"Worker domains to partition the fleet across (>= 1)." ~docv:"N")

let batch =
  Arg.(value & opt int 8
       & info [ "batch" ]
           ~doc:"Trap deliveries a guest absorbs before yielding its domain \
                 (>= 1); larger batches amortize the modeled switch cost." ~docv:"B")

let switch_cost =
  Arg.(value & opt int Fleet.default_switch_cost
       & info [ "switch-cost" ]
           ~doc:"Modeled cycles charged to a domain per guest context switch." ~docv:"CYCLES")

let flows =
  Arg.(value & flag
       & info [ "flows" ]
           ~doc:"Attach a per-guest FP-exception flight recorder and report \
                 flows_open/flows_completed/flows_dropped in each guest's \
                 JSON line. Observation only: fingerprints are unchanged.")

let verify_solo =
  Arg.(value & flag
       & info [ "verify-solo" ]
           ~doc:"After the fleet completes, re-run every guest solo and \
                 compare output and stats fingerprint bit-for-bit; exit 7 \
                 on any mismatch.")

let json =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Print the aggregate fleet result as JSON to stdout.")

let quiet =
  Arg.(value & flag
       & info [ "q"; "quiet" ]
           ~doc:"Suppress the per-guest JSON result lines.")

let cmd =
  let doc = "serve a fleet of FPVM guests across OCaml domains" in
  Cmd.v (Cmd.info "fpvm_serve" ~doc)
    Term.(
      ret
        (const serve $ manifest $ domains $ batch $ switch_cost $ flows
       $ verify_solo $ json $ quiet))

let () = exit (Cmd.eval' cmd)
