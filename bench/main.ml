(* The evaluation harness: regenerates every table and figure of the
   paper's evaluation (section 5) plus the section 3.2 trap-and-patch
   proof of concept and the section 6 delivery-cost projections.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig9    -- one experiment
     dune exec bench/main.exe -- list    -- what exists

   Microbenchmark timings (Figure 11) are measured with Bechamel on the
   host; system-level numbers come from the simulator's cycle
   accounting. Absolute values are not expected to match the paper's
   testbeds - the *shapes* (who wins, by what factor, where the
   crossovers sit) are the reproduction targets; see EXPERIMENTS.md. *)

module B = Bigfloat
module E = Elementary
module CM = Machine.Cost_model
module W = Workloads

module E_vanilla = Fpvm.Engine.Make (Fpvm.Alt_vanilla)
module E_mpfr = Fpvm.Engine.Make (Fpvm.Alt_mpfr)
module E_posit = Fpvm.Engine.Make (Fpvm.Alt_posit)

let printf = Printf.printf

let hr title =
  printf "\n==== %s %s\n\n" title (String.make (max 1 (66 - String.length title)) '=')

(* ---- Bechamel helper: ns per run of a thunk ------------------------------ *)

let measure_ns (pairs : (string * (unit -> unit)) list) : (string * float) list =
  let open Bechamel in
  let tests =
    List.map (fun (name, fn) -> Test.make ~name (Staged.stage fn)) pairs
  in
  let grouped = Test.make_grouped ~name:"g" ~fmt:"%s %s" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  List.map
    (fun (name, _) ->
      let full = "g " ^ name in
      let est = Hashtbl.find results full in
      let ns =
        match Analyze.OLS.estimates est with
        | Some (v :: _) -> v
        | _ -> Float.nan
      in
      (name, ns))
    pairs

(* ---- common engine runners ---------------------------------------------- *)

let cfg ?(approach = Fpvm.Engine.Trap_and_emulate) ?(cost = CM.r815)
    ?(deployment = Trapkern.User_signal) ?(gc_interval = 20000)
    ?(incremental_gc = true) ?(full_scan_every = 8) ?(max_trace_len = 64)
    ?(decode_cache = true) ?(use_plans = true) ?(use_jit = true)
    ?(jit_threshold = 8) ?(jit_max_trace_len = 64) ?(use_fpa = true)
    ?(oracle = false) () =
  { Fpvm.Engine.approach; deployment; use_vsa = true; use_fpa; oracle;
    gc_interval; incremental_gc; full_scan_every; decode_cache;
    always_emulate = false; max_trace_len; use_plans; use_jit; jit_threshold;
    jit_max_trace_len; cost; max_insns = 400_000_000 }

let workloads_fig9 =
  [ "miniAero"; "Enzo(astro)"; "lorenz"; "NAS CG"; "fbench"; "three-body" ]

let get name =
  match W.find name with Some e -> e | None -> failwith ("no workload " ^ name)

(* ---- Figure 3: the four approaches -------------------------------------- *)

let quiet_src : Fpvm_ir.Ast.program =
  let open Fpvm_ir.Ast in
  { name = "quiet";
    decls = [ Fscalar ("x", 0.0); Iscalar ("k", 0) ];
    body =
      [ For ("k", i 0, i 2000, [ Fset ("x", fv "x" +: f 1.0) ]);
        Print_f (fv "x") ] }

let fig3 () =
  hr "Figure 3: comparison of the four FPVM approaches (measured)";
  printf
    "Two programs under each approach (Vanilla arithmetic, R815 model):\n\
     - 'quiet' never raises FP events (exact integer-valued arithmetic),\n\
    \  exposing overhead paid when alternative arithmetic is NOT involved.\n\
     - 'lorenz' promotes on nearly every operation, exposing overhead when\n\
    \  alternative arithmetic IS involved.\n\n";
  let quiet = Fpvm_ir.Codegen.compile_program quiet_src in
  let quiet_instr = Fpvm_ir.Codegen.compile_program ~mode:`Instrumented quiet_src in
  let lorenz = W.Lorenz.program ~steps:500 () in
  let lorenz_instr = W.Lorenz.program ~steps:500 ~mode:`Instrumented () in
  let native_q = Fpvm.Engine.run_native quiet in
  let native_l = Fpvm.Engine.run_native lorenz in
  printf "%-28s %14s %14s\n" "approach" "quiet ovhd" "lorenz ovhd";
  let row name rq rl =
    printf "%-28s %13.2fx %13.2fx\n" name
      (float_of_int rq.Fpvm.Engine.cycles /. float_of_int native_q.Fpvm.Engine.cycles)
      (float_of_int rl.Fpvm.Engine.cycles /. float_of_int native_l.Fpvm.Engine.cycles)
  in
  row "trap-and-emulate"
    (E_vanilla.run ~config:(cfg ()) quiet)
    (E_vanilla.run ~config:(cfg ()) lorenz);
  row "trap-and-patch"
    (E_vanilla.run ~config:(cfg ~approach:Fpvm.Engine.Trap_and_patch ()) quiet)
    (E_vanilla.run ~config:(cfg ~approach:Fpvm.Engine.Trap_and_patch ()) lorenz);
  row "static binary transform"
    (E_vanilla.run ~config:(cfg ~approach:Fpvm.Engine.Static_transform ()) quiet)
    (E_vanilla.run ~config:(cfg ~approach:Fpvm.Engine.Static_transform ()) lorenz);
  row "compiler (IR) transform"
    (E_vanilla.run ~config:(cfg ~approach:Fpvm.Engine.Static_transform ()) quiet_instr)
    (E_vanilla.run ~config:(cfg ~approach:Fpvm.Engine.Static_transform ()) lorenz_instr);
  printf
    "\nExpected shape: trap-and-emulate is free when nothing promotes and\n\
     worst when everything does; patched/static/compiler variants pay a\n\
     small always-on check but avoid kernel traps when promotion is hot.\n"

(* ---- Section 3.2: trap-and-patch proof of concept ------------------------ *)

let patch_poc () =
  hr "Section 3.2 PoC: patch+handler vs trap for one addsd site";
  let c = CM.r815 in
  let trap_cost = CM.delivery_cost c Trapkern.User_signal in
  let patch_hit = c.CM.patch_check + c.CM.emu_dispatch in
  let patch_miss = c.CM.patch_check in
  printf "per-execution cycle costs at one instruction site (R815 model):\n";
  printf "  %-44s %8d\n" "hardware trap delivery (to user handler)" trap_cost;
  printf "  %-44s %8d\n" "patch: checks pass (no alt arithmetic)" patch_miss;
  printf "  %-44s %8d\n" "patch: checks fail -> handler + emulate entry" patch_hit;
  printf
    "\ncrossover: the patch wins once the site faults on more than %.4f%% of visits\n"
    (100.0 *. float_of_int patch_miss /. float_of_int trap_cost);
  printf "\n%-22s %16s %16s\n" "boxed-visit fraction" "trap-and-emulate"
    "trap-and-patch";
  List.iter
    (fun permille ->
      let frac = float_of_int permille /. 1000.0 in
      let te = frac *. float_of_int (trap_cost + c.CM.emu_dispatch) in
      let tp =
        float_of_int patch_miss +. (frac *. float_of_int c.CM.emu_dispatch)
      in
      printf "%20.1f%% %15.0fc %15.0fc%s\n" (100.0 *. frac) te tp
        (if te < tp then "   (emulate wins)" else "   (patch wins)"))
    [ 0; 1; 2; 5; 10; 50; 100; 500; 1000 ];
  let prog = W.Lorenz.program ~steps:400 () in
  let te = E_vanilla.run ~config:(cfg ()) prog in
  let tp = E_vanilla.run ~config:(cfg ~approach:Fpvm.Engine.Trap_and_patch ()) prog in
  printf
    "\nlive lorenz(400): trap-and-emulate %d kernel traps, %d cycles\n\
    \                  trap-and-patch    %d kernel traps, %d cycles\n"
    te.Fpvm.Engine.stats.Fpvm.Stats.fp_traps te.Fpvm.Engine.cycles
    tp.Fpvm.Engine.stats.Fpvm.Stats.fp_traps tp.Fpvm.Engine.cycles

(* ---- Figure 9 -------------------------------------------------------------- *)

let fig9 ?(decode_cache = true) () =
  hr
    (if decode_cache then
       "Figure 9: avg cost of virtualizing an FP instruction (cycles, MPFR-200)"
     else "Figure 9 ablation: decode cache disabled");
  printf "%-12s %8s | %7s %7s %7s %7s %7s %7s %7s %7s\n" "code" "total" "hw"
    "kernel" "deliver" "decode" "bind" "emulate" "gc" "corr";
  List.iter
    (fun name ->
      let e = get name in
      let r = E_mpfr.run ~config:(cfg ~decode_cache ()) (e.W.program W.Test) in
      let b = Fpvm.Stats.breakdown r.Fpvm.Engine.stats in
      printf "%-12s %8.0f | %7.0f %7.0f %7.0f %7.0f %7.0f %7.0f %7.0f %7.0f\n"
        e.W.name b.Fpvm.Stats.avg_total b.Fpvm.Stats.avg_hw
        b.Fpvm.Stats.avg_kernel b.Fpvm.Stats.avg_delivery
        b.Fpvm.Stats.avg_decode b.Fpvm.Stats.avg_bind b.Fpvm.Stats.avg_emulate
        b.Fpvm.Stats.avg_gc
        (b.Fpvm.Stats.avg_correctness +. b.Fpvm.Stats.avg_correctness_handler))
    workloads_fig9;
  printf
    "\nExpected shape (paper: 12k-24k cycles total): the delivery path\n\
     (hw+kernel+user) dominates, decode is amortized to noise by the cache,\n\
     correctness overhead is ~zero everywhere except the Enzo stand-in.\n"

(* ---- Figure 10 --------------------------------------------------------------- *)

let fig10 () =
  hr "Figure 10: garbage collector statistics";
  printf "%-12s %10s %10s %10s %12s %10s\n" "code" "passes" "freed" "alive"
    "latency(us)" "collected";
  List.iter
    (fun name ->
      let e = get name in
      let r = E_mpfr.run ~config:(cfg ~gc_interval:5000 ()) (e.W.program W.Test) in
      let s = r.Fpvm.Engine.stats in
      let pct =
        if s.Fpvm.Stats.boxes_allocated = 0 then 0.0
        else
          100.0 *. float_of_int s.Fpvm.Stats.gc_freed
          /. float_of_int s.Fpvm.Stats.boxes_allocated
      in
      printf "%-12s %10d %10d %10d %12.1f %9.1f%%\n" e.W.name
        s.Fpvm.Stats.gc_passes s.Fpvm.Stats.gc_freed s.Fpvm.Stats.gc_alive_last
        (1e6 *. s.Fpvm.Stats.gc_latency_s
        /. float_of_int (max 1 s.Fpvm.Stats.gc_passes))
        pct)
    workloads_fig9;
  printf
    "\nExpected shape (paper: >95%% of shadow values collected each pass):\n\
     the temporaries problem makes nearly every allocation garbage by the\n\
     next epoch; only live program state survives.\n"

(* ---- Figure 11 ----------------------------------------------------------------- *)

let fig11 ?(max_log2 = 14) () =
  hr "Figure 11: bigfloat (MPFR substitute) op latency vs precision";
  let clock_ghz = 2.1 in
  printf "(measured on the host with Bechamel, reported as cycles at %.1f GHz)\n\n"
    clock_ghz;
  printf "%6s %12s %12s %12s %12s\n" "bits" "add" "sub" "mul" "div";
  let results = ref [] in
  List.iter
    (fun lg ->
      let prec = 1 lsl lg in
      let a = B.sqrt ~prec:(prec + 8) (B.of_int 2) in
      let b = B.sqrt ~prec:(prec + 8) (B.of_int 3) in
      let tests =
        [ ("add", fun () -> ignore (B.add ~prec a b));
          ("sub", fun () -> ignore (B.sub ~prec a b));
          ("mul", fun () -> ignore (B.mul ~prec a b));
          ("div", fun () -> ignore (B.div ~prec a b)) ]
      in
      let ns = measure_ns tests in
      let cyc name = clock_ghz *. List.assoc name ns in
      results := (prec, (cyc "add", cyc "sub", cyc "mul", cyc "div")) :: !results;
      printf "%6d %12.0f %12.0f %12.0f %12.0f\n%!" prec (cyc "add") (cyc "sub")
        (cyc "mul") (cyc "div"))
    (List.init (max_log2 - 4) (fun k -> k + 5));
  let budget = 12000.0 in
  printf
    "\nAgainst a %.0f-cycle virtualization budget (Fig 9), each op starts to\n\
     dominate at the precision where its cost exceeds the budget:\n" budget;
  let sorted = List.rev !results in
  List.iter
    (fun (opname, sel) ->
      match List.find_opt (fun (_, t) -> sel t > budget) sorted with
      | Some (p, _) -> printf "  %-4s crosses at ~%d bits\n" opname p
      | None -> printf "  %-4s never crosses below 2^%d bits\n" opname max_log2)
    [ ("add", fun (a, _, _, _) -> a);
      ("sub", fun (_, s, _, _) -> s);
      ("mul", fun (_, _, m, _) -> m);
      ("div", fun (_, _, _, d) -> d) ];
  printf
    "\nExpected shape: flat below ~2^10 bits then superlinear growth, with\n\
     div >> mul > sub ~ add, so division crosses first (the paper reports\n\
     2^13 for division vs 2^18 for addition against its budget).\n"

(* ---- Figure 12 -------------------------------------------------------------------- *)

let fig12 ?(deployment = Trapkern.User_signal) () =
  hr "Figure 12: wall-clock slowdown under FPVM (MPFR-200), by machine";
  printf "%-12s %-14s %10s %10s %10s\n" "Benchmarks" "Specifics" "R815" "7220"
    "R730xd";
  List.iter
    (fun (e : W.entry) ->
      let prog = e.W.program W.Test in
      let slow cost =
        let native = Fpvm.Engine.run_native ~cost prog in
        let r = E_mpfr.run ~config:(cfg ~cost ~deployment ()) prog in
        float_of_int r.Fpvm.Engine.cycles
        /. float_of_int native.Fpvm.Engine.cycles
      in
      printf "%-12s %-14s %9.0fx %9.0fx %9.0fx\n%!" e.W.name e.W.specifics
        (slow CM.r815) (slow CM.xeon7220) (slow CM.r730xd))
    W.all;
  printf
    "\nExpected shape (paper: 204x-12,169x): IS smallest (integer-dominated),\n\
     EP moderate, CG/MG/LU worst (nearly every dynamic instruction is a\n\
     rounding FP op).\n"

(* ---- Figure 13 ----------------------------------------------------------------------- *)

let fig13 () =
  hr "Figure 13: Lorenz under IEEE vs FPVM-Vanilla vs FPVM-MPFR";
  let steps = 2500 in
  let prog = W.Lorenz.program ~steps ~emit_every:128 () in
  let native = Fpvm.Engine.run_native prog in
  let vanilla = E_vanilla.run ~config:(cfg ()) prog in
  let mpfr = E_mpfr.run ~config:(cfg ()) prog in
  let traj s =
    let raw = Bytes.of_string s in
    Array.init
      (Bytes.length raw / 8)
      (fun k -> Int64.float_of_bits (Bytes.get_int64_le raw (8 * k)))
  in
  let ti = traj native.Fpvm.Engine.serialized in
  let tv = traj vanilla.Fpvm.Engine.serialized in
  let tm = traj mpfr.Fpvm.Engine.serialized in
  printf "vanilla == ieee trajectory: %b (the section 5.2 validation)\n\n"
    (ti = tv);
  printf "%8s %22s %22s %14s\n" "step" "IEEE x" "MPFR x" "|delta|";
  let npts = Array.length ti / 3 in
  for k = 0 to npts - 1 do
    let xi = ti.(3 * k) and xm = tm.(3 * k) in
    printf "%8d %22.14g %22.14g %14.6g\n" (k * 128) xi xm (Float.abs (xi -. xm))
  done;
  printf "\nfinal state (IEEE):\n%s" native.Fpvm.Engine.output;
  printf "final state (MPFR-200):\n%s" mpfr.Fpvm.Engine.output;
  printf
    "\nExpected shape: Vanilla is bit-identical to IEEE; the MPFR trajectory\n\
     diverges exponentially after ~1000 steps (chaos amplifies the rounding\n\
     differences) and ends at a different point of the attractor.\n"

(* ---- Figure 14 -------------------------------------------------------------------------- *)

let fig14 () =
  hr "Figure 14: exception delivery cost, user-level vs kernel-level";
  printf "%-10s %18s %18s %8s %18s\n" "machine" "user delivery"
    "kernel delivery" "ratio" "user->user (est.)";
  List.iter
    (fun c ->
      let u = CM.delivery_cost c Trapkern.User_signal in
      let k = CM.delivery_cost c Trapkern.Kernel_module in
      let uu = CM.delivery_cost c Trapkern.User_to_user in
      printf "%-10s %17dc %17dc %7.1fx %17dc\n" c.CM.name u k
        (float_of_int u /. float_of_int k)
        uu)
    CM.profiles;
  let prog = W.Lorenz.program ~steps:200 () in
  printf "\nlive lorenz(200) under each deployment (total cycles):\n";
  List.iter
    (fun d ->
      let name =
        match d with
        | Trapkern.User_signal -> "user signal"
        | Trapkern.Kernel_module -> "kernel module"
        | Trapkern.User_to_user -> "user->user"
      in
      let r = E_vanilla.run ~config:(cfg ~deployment:d ()) prog in
      printf "  %-14s %12d cycles (%d traps)\n" name r.Fpvm.Engine.cycles
        r.Fpvm.Engine.stats.Fpvm.Stats.fp_traps)
    [ Trapkern.User_signal; Trapkern.Kernel_module; Trapkern.User_to_user ];
  printf
    "\nExpected shape: kernel delivery 7-30x cheaper than user delivery\n\
     (paper Fig 14); the user->user 'pipeline interrupt' approaches the\n\
     cost of a mispredicted branch (section 6.2).\n"

(* ---- Section 5.2 --------------------------------------------------------------------------- *)

let validate () =
  hr "Section 5.2: validation (FPVM+Vanilla == native, all workloads)";
  printf "%-12s %10s %10s %8s\n" "code" "traps" "corr" "result";
  List.iter
    (fun (e : W.entry) ->
      let prog = e.W.program W.Test in
      let native = Fpvm.Engine.run_native prog in
      let v = E_vanilla.run ~config:(cfg ()) prog in
      let ok =
        native.Fpvm.Engine.output = v.Fpvm.Engine.output
        && native.Fpvm.Engine.serialized = v.Fpvm.Engine.serialized
      in
      printf "%-12s %10d %10d %8s\n" e.W.name
        v.Fpvm.Engine.stats.Fpvm.Stats.fp_traps
        v.Fpvm.Engine.stats.Fpvm.Stats.correctness_traps
        (if ok then "OK" else "FAIL"))
    W.all

(* ---- Section 5.5 ----------------------------------------------------------------------------- *)

let count_lines path =
  try
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n
  with Sys_error _ -> 0

let count_dir dir =
  try
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli")
    |> List.map (fun f -> count_lines (Filename.concat dir f))
    |> List.fold_left ( + ) 0
  with Sys_error _ -> 0

let loc () =
  hr "Section 5.5: lines of code by component (this reproduction)";
  List.iter
    (fun (label, dir) -> printf "  %-44s %6d\n" label (count_dir dir))
    [ ("FPVM core (trap-and-emulate + analysis)", "lib/core");
      ("VX64 machine substrate", "lib/machine");
      ("softfloat IEEE-754 substrate", "lib/ieee754");
      ("bignum substrate", "lib/bignum");
      ("bigfloat (MPFR substitute)", "lib/bigfloat");
      ("posit library", "lib/posit");
      ("trap kernel", "lib/trapkern");
      ("compiler (DSL/IR/codegen)", "lib/fpvm_ir");
      ("workloads", "lib/workloads");
      ("tests", "test");
      ("benches", "bench") ];
  printf
    "\n(paper: ~6,300 lines C/C++ trap-and-emulate, 1,484 lines Python static\n\
     analysis, ~350 lines per arithmetic port)\n";
  printf "our arithmetic ports: vanilla=%d mpfr=%d posit=%d lines\n"
    (count_lines "lib/core/alt_vanilla.ml")
    (count_lines "lib/core/alt_mpfr.ml")
    (count_lines "lib/core/alt_posit.ml")

(* ---- FPSpy reconnaissance (the HPDC'20 lineage, section 4.1) ---- *)

let fpspy () =
  hr "FPSpy profile: floating point events per workload (no emulation)";
  printf "%-12s %10s %10s %8s %8s %8s %8s %8s\n" "code" "fp insns" "traps"
    "rounded" "under" "over" "denorm" "invalid";
  List.iter
    (fun (e : W.entry) ->
      let r = Fpvm.Fpspy.run (e.W.program W.Test) in
      let p = r.Fpvm.Fpspy.profile in
      printf "%-12s %10d %10d %8d %8d %8d %8d %8d\n" e.W.name
        r.Fpvm.Fpspy.run.Fpvm.Engine.fp_insns p.Fpvm.Fpspy.total_traps
        p.Fpvm.Fpspy.rounded p.Fpvm.Fpspy.underflowed p.Fpvm.Fpspy.overflowed
        p.Fpvm.Fpspy.denormal p.Fpvm.Fpspy.invalid)
    W.all;
  printf
    "\nThis is the analyst's first step (and the FPVM trap-rate predictor):\n\
     the trap column divided by fp insns is the fraction of dynamic FP work\n\
     that FPVM would virtualize - compare Figure 12's slowdowns.\n"

(* ---- Section 5.4 extension: effects across all arithmetic systems ---- *)

module E_interval = Fpvm.Engine.Make (Fpvm.Alt_interval)

let effects () =
  hr "Section 5.4 extension: one binary, four arithmetic systems";
  let prog = W.Three_body.program ~steps:1500 ~dt:0.01 () in
  let last_line s =
    let lines = String.split_on_char '\n' (String.trim s) in
    List.nth lines (List.length lines - 1)
  in
  printf "three-body final total energy (last output line) per system:\n\n";
  let native = Fpvm.Engine.run_native prog in
  printf "  %-22s %s\n" "native IEEE double" (last_line native.Fpvm.Engine.output);
  let v = E_vanilla.run ~config:(cfg ()) prog in
  printf "  %-22s %s   (identical: %b)\n" "FPVM + Vanilla"
    (last_line v.Fpvm.Engine.output)
    (v.Fpvm.Engine.output = native.Fpvm.Engine.output);
  let m = E_mpfr.run ~config:(cfg ()) prog in
  printf "  %-22s %s\n" "FPVM + MPFR-200" (last_line m.Fpvm.Engine.output);
  let p = E_posit.run ~config:(cfg ()) prog in
  printf "  %-22s %s\n" "FPVM + posit<32,2>" (last_line p.Fpvm.Engine.output);
  let iv = E_interval.run ~config:(cfg ()) prog in
  printf "  %-22s %s   (interval midpoint)\n" "FPVM + interval"
    (last_line iv.Fpvm.Engine.output);
  printf
    "\nExpected shape: Vanilla reproduces IEEE exactly; MPFR-200 gives the\n\
     reference answer; posit32 lands nearby with its own rounding; the\n\
     interval system's midpoint tracks IEEE while its width (see the\n\
     interval test suite) bounds the accumulated rounding error.\n"

(* ---- ablations ---------------------------------------------------------------------------------- *)

let ablate_gc () =
  hr "Ablation: GC epoch length vs memory high-water (lorenz, MPFR-200)";
  let prog = W.Lorenz.program ~steps:800 () in
  printf "%12s %10s %12s %12s\n" "interval" "passes" "freed" "gc cycles";
  List.iter
    (fun interval ->
      let r = E_mpfr.run ~config:(cfg ~gc_interval:interval ()) prog in
      let s = r.Fpvm.Engine.stats in
      printf "%12d %10d %12d %12d\n" interval s.Fpvm.Stats.gc_passes
        s.Fpvm.Stats.gc_freed s.Fpvm.Stats.cyc_gc)
    [ 500; 2000; 8000; 32000; 128000 ];
  printf
    "\nExpected shape: longer epochs mean fewer passes (less scan work) but\n\
     more dead cells held between passes (section 4.1's memory pressure).\n"

let ablate_vsa () =
  hr "Ablation: static analysis precision (sinks patched vs loads proven)";
  printf "%-12s %10s %12s %12s %10s\n" "code" "sinks" "int loads"
    "proven safe" "precision";
  List.iter
    (fun (e : W.entry) ->
      let a = Fpvm.Vsa.analyze (e.W.program W.Test) in
      let total = a.Fpvm.Vsa.total_int_loads in
      printf "%-12s %10d %12d %12d %9.0f%%\n" e.W.name
        (List.length a.Fpvm.Vsa.sinks)
        total a.Fpvm.Vsa.proven_safe_loads
        (if total = 0 then 100.0
         else
           100.0 *. float_of_int a.Fpvm.Vsa.proven_safe_loads
           /. float_of_int total))
    W.all;
  printf
    "\nExpected shape: most integer loads proven safe; the Enzo stand-in\n\
     keeps unprovable sinks in its hot loop (cf. Fig 9 correctness column).\n"

let ablate_compiler_gc () =
  hr "Ablation: compiler-managed shadow freeing (section 3.4's GC advantage)";
  printf "%-28s %12s %12s %12s %12s\n" "build" "boxes" "eager frees"
    "gc freed" "gc cycles";
  let config =
    { (cfg ~approach:Fpvm.Engine.Static_transform ()) with
      Fpvm.Engine.gc_interval = 2000 }
  in
  let row name prog =
    let r = E_mpfr.run ~config prog in
    let s = r.Fpvm.Engine.stats in
    printf "%-28s %12d %12d %12d %12d\n" name s.Fpvm.Stats.boxes_allocated
      s.Fpvm.Stats.eager_frees s.Fpvm.Stats.gc_freed s.Fpvm.Stats.cyc_gc
  in
  row "plain binary" (W.Lorenz.program ~steps:800 ());
  row "compiler (liveness hints)" (W.Lorenz.program ~steps:800 ~mode:`Instrumented ());
  printf
    "\nExpected shape: the compiler build frees most shadow values at their\n\
     statically-known death points, so the conservative GC has little left\n\
     to find (the paper's argument that IR-level FPVM can 'substantially\n\
     simplify garbage collection').\n"

let ablate_delivery () =
  hr "Ablation: projected Fig 12 slowdowns under section 6 delivery options";
  printf "%-12s %14s %14s %14s\n" "code" "user signal" "kernel module"
    "user->user";
  List.iter
    (fun name ->
      let e = get name in
      let prog = e.W.program W.Test in
      let native = Fpvm.Engine.run_native prog in
      let slow d =
        let r = E_mpfr.run ~config:(cfg ~deployment:d ()) prog in
        float_of_int r.Fpvm.Engine.cycles
        /. float_of_int native.Fpvm.Engine.cycles
      in
      printf "%-12s %13.0fx %13.0fx %13.0fx\n%!" e.W.name
        (slow Trapkern.User_signal)
        (slow Trapkern.Kernel_module)
        (slow Trapkern.User_to_user))
    workloads_fig9;
  printf
    "\nExpected shape: each delivery improvement removes its share of the\n\
     per-trap budget (section 6's argument for kernel and hardware support).\n"

(* ---- BENCH_overhead.json: trap coalescing + incremental GC ---------------- *)

(* Machine-readable evidence for the sequence-emulation / dirty-card GC
   optimization: every fig-9 workload under Trap_and_emulate + MPFR-200,
   seed configuration (single-step, full-scan GC) against the default
   (64-instruction traces, incremental GC), with bit-identical outputs
   asserted. The GC comparison runs separately with a short epoch so
   enough passes exist to amortize the periodic full scans. *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let bench_json () =
  hr "BENCH_overhead.json: trace emulation + incremental GC evidence";
  let seed_cfg = cfg ~incremental_gc:false () in
  let seed_cfg = { seed_cfg with Fpvm.Engine.max_trace_len = 1 } in
  let opt_cfg = cfg () in
  let delivery (s : Fpvm.Stats.t) =
    s.Fpvm.Stats.cyc_hw + s.Fpvm.Stats.cyc_kernel + s.Fpvm.Stats.cyc_delivery
  in
  let run_block config prog =
    let r = E_mpfr.run ~config prog in
    (r, r.Fpvm.Engine.stats)
  in
  let side name (r : Fpvm.Engine.result) (s : Fpvm.Stats.t) =
    Printf.sprintf
      "      \"%s\": { \"cycles\": %d, \"delivery_cycles\": %d, \
       \"fp_traps\": %d, \"traps_avoided\": %d, \"traces\": %d, \
       \"mean_trace_len\": %.2f, \"trace_cycles\": %d, \
       \"gc_passes\": %d, \"gc_words_scanned\": %d }"
      name r.Fpvm.Engine.cycles (delivery s) s.Fpvm.Stats.fp_traps
      s.Fpvm.Stats.traps_avoided s.Fpvm.Stats.traces
      (Fpvm.Stats.mean_trace_len s) s.Fpvm.Stats.cyc_trace
      s.Fpvm.Stats.gc_passes s.Fpvm.Stats.gc_words_scanned
  in
  let trace_rows =
    List.map
      (fun name ->
        let e = get name in
        let prog = e.W.program W.Test in
        let rs, ss = run_block seed_cfg prog in
        let ro, so = run_block opt_cfg prog in
        let identical =
          rs.Fpvm.Engine.output = ro.Fpvm.Engine.output
          && rs.Fpvm.Engine.serialized = ro.Fpvm.Engine.serialized
        in
        let speedup =
          float_of_int (delivery ss) /. float_of_int (max 1 (delivery so))
        in
        printf "%-12s delivery %9d -> %9d cycles (%.2fx)  traps %6d -> %6d  \
                mean trace %.1f  identical=%b\n"
          name (delivery ss) (delivery so) speedup ss.Fpvm.Stats.fp_traps
          so.Fpvm.Stats.fp_traps
          (Fpvm.Stats.mean_trace_len so)
          identical;
        Printf.sprintf
          "    { \"workload\": \"%s\",\n\
           \      \"bit_identical\": %b,\n\
           \      \"delivery_speedup\": %.3f,\n\
           %s,\n\
           %s }"
          (json_escape name) identical speedup
          (side "seed" rs ss) (side "traced" ro so))
      workloads_fig9
  in
  (* GC words-per-pass comparison: short epochs, evaluation scale. *)
  let gc_rows =
    List.map
      (fun name ->
        let e = get name in
        let prog = e.W.program W.S in
        let gc_cfg inc fse =
          let c = cfg ~gc_interval:500 ~incremental_gc:inc () in
          { c with Fpvm.Engine.full_scan_every = fse }
        in
        let rf = E_vanilla.run ~config:(gc_cfg false 8) prog in
        let ri = E_vanilla.run ~config:(gc_cfg true 16) prog in
        let sf = rf.Fpvm.Engine.stats and si = ri.Fpvm.Engine.stats in
        let wpp (s : Fpvm.Stats.t) =
          float_of_int s.Fpvm.Stats.gc_words_scanned
          /. float_of_int (max 1 s.Fpvm.Stats.gc_passes)
        in
        let ratio = wpp sf /. wpp si in
        printf "%-12s gc words/pass %7.0f -> %7.0f (%.1fx)  freed %d == %d: %b\n"
          name (wpp sf) (wpp si) ratio sf.Fpvm.Stats.gc_freed
          si.Fpvm.Stats.gc_freed
          (sf.Fpvm.Stats.gc_freed = si.Fpvm.Stats.gc_freed);
        Printf.sprintf
          "    { \"workload\": \"%s\", \"scan_reduction\": %.2f,\n\
           \      \"full\": { \"gc_passes\": %d, \"gc_words_scanned\": %d, \
           \"gc_freed\": %d, \"gc_alive_last\": %d },\n\
           \      \"incremental\": { \"gc_passes\": %d, \"gc_full_passes\": %d, \
           \"gc_words_scanned\": %d, \"gc_freed\": %d, \"gc_alive_last\": %d } }"
          (json_escape name) ratio sf.Fpvm.Stats.gc_passes
          sf.Fpvm.Stats.gc_words_scanned sf.Fpvm.Stats.gc_freed
          sf.Fpvm.Stats.gc_alive_last si.Fpvm.Stats.gc_passes
          si.Fpvm.Stats.gc_full_passes si.Fpvm.Stats.gc_words_scanned
          si.Fpvm.Stats.gc_freed si.Fpvm.Stats.gc_alive_last)
      (workloads_fig9 @ [ "NAS IS" ])
  in
  let doc =
    Printf.sprintf
      "{\n\
       \  \"schema_version\": 1,\n\
       \  \"experiment\": \"trap coalescing (sequence emulation) + \
       write-barrier incremental GC\",\n\
       \  \"arithmetic\": \"mpfr-200\",\n\
       \  \"approach\": \"trap_and_emulate\",\n\
       \  \"cost_model\": \"r815\",\n\
       \  \"seed_config\": { \"max_trace_len\": 1, \"incremental_gc\": false },\n\
       \  \"traced_config\": { \"max_trace_len\": 64, \"incremental_gc\": true, \
       \"full_scan_every\": 8 },\n\
       \  \"trace_emulation\": [\n%s\n  ],\n\
       \  \"gc_comparison_config\": { \"gc_interval\": 500, \
       \"full_scan_every\": 16, \"scale\": \"S\", \"arithmetic\": \"vanilla\" },\n\
       \  \"incremental_gc\": [\n%s\n  ]\n\
       }\n"
      (String.concat ",\n" trace_rows)
      (String.concat ",\n" gc_rows)
  in
  let oc = open_out "BENCH_overhead.json" in
  output_string oc doc;
  close_out oc;
  printf "\nwrote BENCH_overhead.json\n"

(* ---- record/replay: overhead, checkpoint cost, determinism --------------- *)

(* Evidence for lib/replay: recording cost on every fig-9 workload
   (modeled cycles must be *identical* — the probe layer charges
   nothing — and host wall-clock overhead is reported honestly),
   record->replay determinism, and checkpoint size/latency on lorenz.
   Writes BENCH_replay.json. *)

module RS = Replay.Session.Make (Fpvm.Alt_mpfr)

let bench_replay () =
  hr "BENCH_replay.json: record/replay overhead + checkpoint cost";
  let config = cfg () in
  let meta_of name =
    { Replay.Log.workload = name; scale = "test"; arith = "mpfr:200";
      config = "bench" }
  in
  let median3 f =
    let t () =
      let s = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. s)
    in
    let r, _warm = t () in
    let ts =
      List.sort compare
        (List.map
           (fun _ ->
             Gc.full_major ();
             snd (t ()))
           [ 1; 2; 3; 4; 5 ])
    in
    (r, List.nth ts 2)
  in
  let rows =
    List.map
      (fun name ->
        let e = get name in
        let prog = e.W.program W.Test in
        let plain, t_plain = median3 (fun () -> RS.E.run ~config prog) in
        let rec_, t_rec =
          median3 (fun () ->
              RS.record ~checkpoint_every:0 ~meta:(meta_of name) ~config prog)
        in
        let r = rec_.Replay.Session.result in
        let cycles_identical =
          r.Fpvm.Engine.cycles = plain.Fpvm.Engine.cycles
          && Fpvm.Stats.fingerprint r.Fpvm.Engine.stats
             = Fpvm.Stats.fingerprint plain.Fpvm.Engine.stats
        in
        let replay_ok =
          match RS.replay ~config rec_.Replay.Session.log prog with
          | Replay.Session.Match rr ->
              rr.Fpvm.Engine.output = r.Fpvm.Engine.output
              && rr.Fpvm.Engine.serialized = r.Fpvm.Engine.serialized
          | Replay.Session.Diverged _ -> false
        in
        let events = Array.length rec_.Replay.Session.log.Replay.Log.events in
        let bytes = String.length rec_.Replay.Session.log_bytes in
        let wall_ovh = 100.0 *. (t_rec -. t_plain) /. t_plain in
        let us_per_event =
          1e6 *. (t_rec -. t_plain) /. float_of_int (max 1 events)
        in
        printf "%-12s %6d events %8d B  cycles identical=%b  replay=%b  \
                wall %+.1f%% (%.1f us/event)\n"
          name events bytes cycles_identical replay_ok wall_ovh us_per_event;
        assert cycles_identical;
        assert replay_ok;
        Printf.sprintf
          "    { \"workload\": \"%s\", \"events\": %d, \"log_bytes\": %d,\n\
           \      \"modeled_cycles_plain\": %d, \"modeled_cycles_record\": %d,\n\
           \      \"cycle_overhead_pct\": %.3f, \"wall_overhead_pct\": %.1f,\n\
           \      \"replay_matched\": %b }"
          (json_escape name) events bytes plain.Fpvm.Engine.cycles
          r.Fpvm.Engine.cycles
          (100.0
          *. float_of_int (r.Fpvm.Engine.cycles - plain.Fpvm.Engine.cycles)
          /. float_of_int plain.Fpvm.Engine.cycles)
          wall_ovh replay_ok)
      workloads_fig9
  in
  (* checkpoint cost on lorenz: record with and without checkpoints;
     the time delta over the checkpoint count is the per-checkpoint
     serialization latency. A mid-run checkpoint must restore and
     resume to the uninterrupted run's exact result. *)
  let prog = (get "lorenz").W.program W.Test in
  let meta = meta_of "lorenz" in
  let base, t0 =
    median3 (fun () -> RS.record ~checkpoint_every:0 ~meta ~config prog)
  in
  let ck, t1 =
    median3 (fun () -> RS.record ~checkpoint_every:50 ~meta ~config prog)
  in
  let n = List.length ck.Replay.Session.checkpoints in
  let total_bytes =
    List.fold_left
      (fun a (_, b) -> a + String.length b)
      0 ck.Replay.Session.checkpoints
  in
  let lat_us = 1e6 *. (t1 -. t0) /. float_of_int (max 1 n) in
  let mid_seq, mid_blob = List.nth ck.Replay.Session.checkpoints (n / 2) in
  let resumed = RS.resume_from ~config prog mid_blob in
  let b = base.Replay.Session.result in
  let resume_identical =
    resumed.Fpvm.Engine.output = b.Fpvm.Engine.output
    && resumed.Fpvm.Engine.serialized = b.Fpvm.Engine.serialized
    && resumed.Fpvm.Engine.cycles = b.Fpvm.Engine.cycles
    && Fpvm.Stats.fingerprint resumed.Fpvm.Engine.stats
       = Fpvm.Stats.fingerprint b.Fpvm.Engine.stats
  in
  printf "\nlorenz checkpoints: %d taken, %d B total (%.0f B avg), \
          ~%.0f us each; restore@%d resume identical=%b\n"
    n total_bytes
    (float_of_int total_bytes /. float_of_int (max 1 n))
    lat_us mid_seq resume_identical;
  assert resume_identical;
  let doc =
    Printf.sprintf
      "{\n\
       \  \"schema_version\": 1,\n\
       \  \"experiment\": \"deterministic record/replay + checkpoint/restore\",\n\
       \  \"arithmetic\": \"mpfr-200\",\n\
       \  \"config\": { \"approach\": \"trap_and_emulate\", \
       \"max_trace_len\": 64, \"incremental_gc\": true },\n\
       \  \"note\": \"modeled cycles are the acceptance metric: the probe \
       layer charges no cycles, so recording overhead in the simulated \
       machine is exactly 0; wall_overhead_pct is the host-side cost of \
       digesting and serializing events\",\n\
       \  \"recording\": [\n%s\n  ],\n\
       \  \"checkpoints\": { \"workload\": \"lorenz\", \"every\": 50, \
       \"count\": %d, \"total_bytes\": %d, \"avg_bytes\": %.0f, \
       \"avg_latency_us\": %.1f, \"mid_run_restore_identical\": %b }\n\
       }\n"
      (String.concat ",\n" rows)
      n total_bytes
      (float_of_int total_bytes /. float_of_int (max 1 n))
      lat_us resume_identical
  in
  let oc = open_out "BENCH_replay.json" in
  output_string oc doc;
  close_out oc;
  printf "wrote BENCH_replay.json\n"

(* ---- BENCH_vsa.json: precision-tiered static analysis ------------------- *)

(* Evidence for the tiered VSA pipeline: per workload, the legacy
   flow-insensitive pass against the CFG/strided-interval/flow-taint
   pipeline (sinks and proven-safe loads), with three hard assertions:
   (1) on NAS CG, NAS MG and Enzo(astro) the new analysis proves
   strictly more loads safe than the legacy pass; (2) outputs under the
   new patching are bit-identical to native execution (vanilla); (3) the
   soundness oracle sees zero unpatched boxed-value loads across the
   suite in both GC modes (mpfr, so boxes actually circulate). *)

let bench_vsa () =
  hr "BENCH_vsa.json: precision-tiered static analysis";
  let strict_names = [ "NAS CG"; "NAS MG"; "Enzo(astro)" ] in
  let failures = ref 0 in
  printf "%-12s %22s %22s %9s %8s\n" "workload" "legacy sinks/proven"
    "tiered sinks/proven" "identical" "oracle";
  let rows =
    List.map
      (fun (e : W.entry) ->
        let prog = e.W.program W.Test in
        let l = Analysis.Legacy.analyze prog in
        let a = Fpvm.Vsa.analyze prog in
        let p = a.Fpvm.Vsa.pipeline in
        let nsinks = List.length p.Analysis.Pipeline.sinks in
        let lsinks = List.length l.Analysis.Legacy.sinks in
        (* (2) bit-identical outputs under the new patching *)
        let native = Fpvm.Engine.run_native prog in
        let rv = E_vanilla.run ~config:(cfg ()) prog in
        let identical =
          rv.Fpvm.Engine.output = native.Fpvm.Engine.output
          && rv.Fpvm.Engine.serialized = native.Fpvm.Engine.serialized
        in
        if not identical then incr failures;
        (* (3) oracle under mpfr, both GC modes *)
        let oracle_violations inc =
          let c = { (cfg ~incremental_gc:inc ()) with Fpvm.Engine.oracle = true } in
          let r = E_mpfr.run ~config:c prog in
          r.Fpvm.Engine.stats.Fpvm.Stats.oracle_boxed_loads
        in
        let viol = oracle_violations true + oracle_violations false in
        if viol > 0 then incr failures;
        (* (1) strict precision improvement on the array workloads *)
        let strict = List.mem e.W.name strict_names in
        if
          strict
          && p.Analysis.Pipeline.proven_safe_loads
             <= l.Analysis.Legacy.proven_safe_loads
        then begin
          incr failures;
          printf "FAIL %s: tiered proved %d, legacy %d (strict improvement required)\n"
            e.W.name p.Analysis.Pipeline.proven_safe_loads
            l.Analysis.Legacy.proven_safe_loads
        end;
        printf "%-12s %12d / %-7d %12d / %-7d %9b %8s\n%!" e.W.name lsinks
          l.Analysis.Legacy.proven_safe_loads nsinks
          p.Analysis.Pipeline.proven_safe_loads identical
          (if viol = 0 then "pass" else "VIOLATED");
        Printf.sprintf
          "    { \"workload\": \"%s\", \"strict_improvement_required\": %b,\n\
           \      \"legacy\": { \"sinks\": %d, \"proven_safe_loads\": %d, \
           \"iterations\": %d },\n\
           \      \"tiered\": { \"sinks\": %d, \"proven_safe_loads\": %d, \
           \"total_int_loads\": %d, \"trap_checks_elided\": %d, \
           \"blocks\": %d, \"loop_heads\": %d, \"iterations\": %d },\n\
           \      \"bit_identical_output\": %b, \"oracle_boxed_loads\": %d }"
          (json_escape e.W.name) strict lsinks
          l.Analysis.Legacy.proven_safe_loads l.Analysis.Legacy.iterations
          nsinks p.Analysis.Pipeline.proven_safe_loads
          p.Analysis.Pipeline.total_int_loads
          p.Analysis.Pipeline.trap_checks_elided p.Analysis.Pipeline.n_blocks
          p.Analysis.Pipeline.n_loop_heads p.Analysis.Pipeline.iterations
          identical viol)
      W.all
  in
  let doc =
    Printf.sprintf
      "{\n\
       \  \"schema_version\": 1,\n\
       \  \"experiment\": \"precision-tiered VSA: legacy flow-insensitive pass \
       vs CFG + strided-interval + flow-sensitive-taint pipeline\",\n\
       \  \"oracle_arithmetic\": \"mpfr-200\",\n\
       \  \"scale\": \"test\",\n\
       \  \"workloads\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" rows)
  in
  let oc = open_out "BENCH_vsa.json" in
  output_string oc doc;
  close_out oc;
  printf "\nwrote BENCH_vsa.json\n";
  if !failures > 0 then begin
    printf "vsa experiment: %d assertion(s) FAILED\n" !failures;
    exit 1
  end

(* ---- BENCH_plans.json: site-specialized emulation ------------------------ *)

(* Evidence for the binding-plan cache + shadow-temp elision, with four
   hard assertions (the CI ratchet):
   (1) plan hit rate >= 95% on NAS CG, NAS MG and Enzo(astro);
   (2) arena allocations strictly decrease with plans on (elision);
   (3) modeled bind + op_map-dispatch cycles drop >= 3x vs --no-plans;
   (4) outputs bit-identical, plans on vs off, across all five
       arithmetic ports and both GC modes, and the soundness oracle
       stays clean with elision active. *)

module E_slash = Fpvm.Engine.Make (Fpvm.Alt_slash)

let bench_plans () =
  hr "BENCH_plans.json: binding-plan cache + shadow-temp elision";
  let strict_names = [ "NAS CG"; "NAS MG"; "Enzo(astro)" ] in
  let failures = ref 0 in
  let bind_disp (s : Fpvm.Stats.t) =
    s.Fpvm.Stats.cyc_bind + s.Fpvm.Stats.cyc_emu_dispatch
  in
  let hit_rate (s : Fpvm.Stats.t) =
    let total = s.Fpvm.Stats.plan_hits + s.Fpvm.Stats.plan_misses in
    if total = 0 then 0.0
    else 100.0 *. float_of_int s.Fpvm.Stats.plan_hits /. float_of_int total
  in
  printf "%-12s %9s %14s %14s %9s %8s\n" "workload" "hit-rate"
    "bind+disp off" "bind+disp on" "ratio" "allocs";
  let rows =
    List.map
      (fun name ->
        let e = get name in
        let prog = e.W.program W.Test in
        let ron = E_mpfr.run ~config:(cfg ~max_trace_len:256 ()) prog in
        let roff =
          E_mpfr.run ~config:(cfg ~max_trace_len:256 ~use_plans:false ()) prog
        in
        let son = ron.Fpvm.Engine.stats and soff = roff.Fpvm.Engine.stats in
        let hr_ = hit_rate son in
        let ratio =
          float_of_int (bind_disp soff) /. float_of_int (max 1 (bind_disp son))
        in
        (* (1) hit rate; (2) strict allocation decrease; (3) >= 3x *)
        if hr_ < 95.0 then begin
          incr failures;
          printf "FAIL %s: plan hit rate %.2f%% < 95%%\n" name hr_
        end;
        if son.Fpvm.Stats.boxes_allocated >= soff.Fpvm.Stats.boxes_allocated
        then begin
          incr failures;
          printf "FAIL %s: arena allocations %d (plans) !< %d (no plans)\n"
            name son.Fpvm.Stats.boxes_allocated
            soff.Fpvm.Stats.boxes_allocated
        end;
        if ratio < 3.0 then begin
          incr failures;
          printf "FAIL %s: bind+dispatch only dropped %.2fx (< 3x)\n" name
            ratio
        end;
        (* (4a) oracle clean with elision active *)
        let oc =
          { (cfg ~max_trace_len:256 ()) with Fpvm.Engine.oracle = true }
        in
        let ro = E_mpfr.run ~config:oc prog in
        let viol = ro.Fpvm.Engine.stats.Fpvm.Stats.oracle_boxed_loads in
        if viol > 0 then begin
          incr failures;
          printf "FAIL %s: oracle saw %d boxed loads with plans on\n" name viol
        end;
        printf "%-12s %8.2f%% %13dc %13dc %8.1fx %5d->%d\n%!" name hr_
          (bind_disp soff) (bind_disp son) ratio
          soff.Fpvm.Stats.boxes_allocated son.Fpvm.Stats.boxes_allocated;
        Printf.sprintf
          "    { \"workload\": \"%s\",\n\
           \      \"plan_hits\": %d, \"plan_misses\": %d, \
           \"plan_hit_rate_pct\": %.3f,\n\
           \      \"temps_elided\": %d, \"temps_materialized\": %d, \
           \"allocs_avoided\": %d,\n\
           \      \"arena_allocs\": { \"no_plans\": %d, \"plans\": %d },\n\
           \      \"bind_dispatch_cycles\": { \"no_plans\": %d, \"plans\": %d, \
           \"reduction\": %.3f },\n\
           \      \"plan_cycles\": %d, \"total_cycles\": { \"no_plans\": %d, \
           \"plans\": %d },\n\
           \      \"oracle_boxed_loads\": %d }"
          (json_escape name) son.Fpvm.Stats.plan_hits
          son.Fpvm.Stats.plan_misses (hit_rate son)
          son.Fpvm.Stats.temps_elided son.Fpvm.Stats.temps_materialized
          (Fpvm.Stats.allocs_avoided son) soff.Fpvm.Stats.boxes_allocated
          son.Fpvm.Stats.boxes_allocated (bind_disp soff) (bind_disp son)
          ratio son.Fpvm.Stats.cyc_plan roff.Fpvm.Engine.cycles
          ron.Fpvm.Engine.cycles viol)
      strict_names
  in
  (* (4b) bit-identical outputs, plans on vs off: all five arithmetic
     ports, both GC modes, every workload. *)
  printf "\ndifferential (plans on == off), 5 ports x 2 GC modes:\n";
  let ports :
      (string * (Fpvm.Engine.config -> Machine.Program.t -> string * string))
      list =
    [ ("vanilla",
       fun c p ->
         let r = E_vanilla.run ~config:c p in
         (r.Fpvm.Engine.output, r.Fpvm.Engine.serialized));
      ("mpfr",
       fun c p ->
         let r = E_mpfr.run ~config:c p in
         (r.Fpvm.Engine.output, r.Fpvm.Engine.serialized));
      ("posit",
       fun c p ->
         let r = E_posit.run ~config:c p in
         (r.Fpvm.Engine.output, r.Fpvm.Engine.serialized));
      ("interval",
       fun c p ->
         let r = E_interval.run ~config:c p in
         (r.Fpvm.Engine.output, r.Fpvm.Engine.serialized));
      ("slash",
       fun c p ->
         let r = E_slash.run ~config:c p in
         (r.Fpvm.Engine.output, r.Fpvm.Engine.serialized)) ]
  in
  let differential_ok = ref true in
  List.iter
    (fun name ->
      let e = get name in
      let prog = e.W.program W.Test in
      List.iter
        (fun (pname, run) ->
          List.iter
            (fun inc ->
              let on =
                run (cfg ~incremental_gc:inc ~max_trace_len:256 ()) prog
              in
              let off =
                run
                  (cfg ~incremental_gc:inc ~max_trace_len:256
                     ~use_plans:false ())
                  prog
              in
              if on <> off then begin
                differential_ok := false;
                incr failures;
                printf "FAIL %s/%s/gc=%s: outputs differ plans on vs off\n"
                  name pname
                  (if inc then "incremental" else "full")
              end)
            [ true; false ])
        ports)
    strict_names;
  printf "  all bit-identical: %b\n" !differential_ok;
  (* per-profile bind+dispatch share, for EXPERIMENTS.md *)
  printf "\nper-profile bind+dispatch share of FPVM cycles (NAS CG):\n";
  let profile_rows =
    List.map
      (fun cost ->
        let prog = (get "NAS CG").W.program W.Test in
        let son =
          (E_mpfr.run ~config:(cfg ~cost ~max_trace_len:256 ()) prog)
            .Fpvm.Engine.stats
        in
        let soff =
          (E_mpfr.run ~config:(cfg ~cost ~max_trace_len:256 ~use_plans:false ())
             prog)
            .Fpvm.Engine.stats
        in
        let share (s : Fpvm.Stats.t) =
          100.0
          *. float_of_int (bind_disp s)
          /. float_of_int (max 1 (Fpvm.Stats.total_fpvm_cycles s))
        in
        printf "  %-10s no-plans %9dc (%5.1f%%)  plans %9dc (%5.1f%%)\n"
          cost.CM.name (bind_disp soff) (share soff) (bind_disp son)
          (share son);
        Printf.sprintf
          "    { \"profile\": \"%s\", \"no_plans\": { \"bind_dispatch\": %d, \
           \"share_pct\": %.2f }, \"plans\": { \"bind_dispatch\": %d, \
           \"share_pct\": %.2f } }"
          cost.CM.name (bind_disp soff) (share soff) (bind_disp son)
          (share son))
      CM.profiles
  in
  let doc =
    Printf.sprintf
      "{\n\
       \  \"schema_version\": 1,\n\
       \  \"experiment\": \"site-specialized emulation: binding-plan cache + \
       compiled superops + in-trace shadow-temp elision\",\n\
       \  \"arithmetic\": \"mpfr-200\",\n\
       \  \"scale\": \"test\",\n\
       \  \"max_trace_len\": 256,\n\
       \  \"ratchet\": { \"plan_hit_rate_min_pct\": 95.0, \
       \"bind_dispatch_reduction_min\": 3.0, \
       \"arena_allocs_strictly_reduced\": true },\n\
       \  \"workloads\": [\n%s\n  ],\n\
       \  \"differential_bit_identical\": %b,\n\
       \  \"profile_bind_dispatch\": [\n%s\n  ]\n\
       }\n"
      (String.concat ",\n" rows)
      !differential_ok
      (String.concat ",\n" profile_rows)
  in
  let oc = open_out "BENCH_plans.json" in
  output_string oc doc;
  close_out oc;
  printf "\nwrote BENCH_plans.json\n";
  if !failures > 0 then begin
    printf "plans experiment: %d assertion(s) FAILED\n" !failures;
    exit 1
  end

(* ---- BENCH_telemetry.json: observability subsystem ----------------------- *)

(* Evidence for lib/telemetry: the stats fingerprint is identical with
   telemetry on vs off on every arithmetic port and both GC modes (the
   collectors only read probe payloads), the per-site profile plus the
   run-global GC bucket reproduces Stats.total_fpvm_cycles with zero
   remainder, the shadow numerical check reports zero error on the
   vanilla port (its expected-value model *is* the vanilla port) and a
   nonzero error under 8-bit MPFR, and the per-cost-model hot-site
   tables quoted in EXPERIMENTS.md. Writes BENCH_telemetry.json. *)

module Tele (A : Fpvm.Arith.S) = struct
  module E = Fpvm.Engine.Make (A)

  (* Run [prog], optionally under full instrumentation (ring trace +
     profile + shadow numerical check). The pair (stats, telemetry)
     has the same type for every port, so callers can treat the five
     instantiations uniformly. *)
  let run ~telemetry ~config prog =
    let ses = E.prepare ~config prog in
    let tel =
      if telemetry then
        Some (Telemetry.create ~trace:true ~profile:true ~shadow:true ())
      else None
    in
    (match tel with
    | Some t -> Telemetry.attach t ses.E.eng.E.probe
    | None -> ());
    let r = E.resume ses in
    (match tel with
    | Some t -> Telemetry.finalize t r.Fpvm.Engine.stats
    | None -> ());
    (r.Fpvm.Engine.stats, tel)
end

module T_vanilla = Tele (Fpvm.Alt_vanilla)
module T_mpfr = Tele (Fpvm.Alt_mpfr)
module T_posit = Tele (Fpvm.Alt_posit)
module T_interval = Tele (Fpvm.Alt_interval)
module T_slash = Tele (Fpvm.Alt_slash)

let bench_telemetry () =
  hr "BENCH_telemetry.json: tracing + hot-site profiles + shadow check";
  let failures = ref 0 in
  let check name ok =
    printf "%-64s %s\n%!" name (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  let lorenz = (get "lorenz").W.program W.Test in
  let ports =
    [ ("vanilla", T_vanilla.run);
      ("mpfr-200", T_mpfr.run);
      ("posit", T_posit.run);
      ("interval", T_interval.run);
      ("slash", T_slash.run) ]
  in
  (* 1. Determinism: fingerprint identity telemetry on vs off, every
     port x both GC modes. *)
  let fp_rows =
    List.concat_map
      (fun (name, run) ->
        List.map
          (fun inc ->
            let config = cfg ~incremental_gc:inc () in
            let s_off, _ = run ~telemetry:false ~config lorenz in
            let s_on, _ = run ~telemetry:true ~config lorenz in
            let identical =
              Fpvm.Stats.fingerprint s_off = Fpvm.Stats.fingerprint s_on
            in
            check
              (Printf.sprintf "fingerprint on==off  %-10s incremental_gc=%b"
                 name inc)
              identical;
            Printf.sprintf
              "    { \"port\": \"%s\", \"incremental_gc\": %b, \"identical\": %b }"
              (json_escape name) inc identical)
          [ true; false ])
      ports
  in
  (* 2. Exactness: per-site buckets + GC bucket == total_fpvm_cycles. *)
  let rec_rows =
    List.map
      (fun (name, run) ->
        let s, tel = run ~telemetry:true ~config:(cfg ()) lorenz in
        let total = Fpvm.Stats.total_fpvm_cycles s in
        let tracked =
          match tel with
          | Some { Telemetry.profile = Some p; _ } ->
              Telemetry.Profile.tracked_cycles p
          | _ -> -1
        in
        check
          (Printf.sprintf "profile reconciles exactly        %-10s" name)
          (tracked = total);
        Printf.sprintf
          "    { \"port\": \"%s\", \"total_fpvm_cycles\": %d, \"tracked_cycles\": %d, \"remainder\": %d }"
          (json_escape name) total tracked (total - tracked))
      ports
  in
  (* 3. Shadow numerical check: zero on vanilla by construction,
     nonzero once MPFR drops to an 8-bit significand. *)
  let max_err tel =
    match tel with
    | Some { Telemetry.numprof = Some np; _ } ->
        Telemetry.Numprof.max_rel_err np
    | _ -> Float.nan
  in
  let _, tel_v = T_vanilla.run ~telemetry:true ~config:(cfg ()) lorenz in
  let err_vanilla = max_err tel_v in
  let module T_mpfr8 = Tele (Fpvm.Alt_mpfr.Make (struct let prec = 8 end)) in
  let _, tel_m8 = T_mpfr8.run ~telemetry:true ~config:(cfg ()) lorenz in
  let err_mpfr8 = max_err tel_m8 in
  check "shadow check: vanilla max_rel_err = 0" (err_vanilla = 0.0);
  check "shadow check: mpfr-8 max_rel_err > 0" (err_mpfr8 > 0.0);
  printf "  (vanilla %.3e, mpfr-8 %.3e)\n" err_vanilla err_mpfr8;
  (* 4. Ring trace exports a well-formed Chrome trace. *)
  let trace_stats =
    match tel_v with
    | Some { Telemetry.trace = Some tr; _ } ->
        let bb = Buffer.create 4096 in
        Telemetry.Trace.export_json tr bb;
        let body = Buffer.contents bb in
        let rec_n = Telemetry.Trace.recorded tr in
        check "trace export: events recorded, JSON non-empty"
          (rec_n > 0 && String.length body > 2 && body.[0] = '{');
        Printf.sprintf
          "{ \"recorded\": %d, \"dropped\": %d, \"bytes\": %d }" rec_n
          (Telemetry.Trace.dropped tr) (String.length body)
    | _ -> "{}"
  in
  (* 5. Hot-site tables, one per cost model (the EXPERIMENTS.md data). *)
  let hot_rows =
    List.map
      (fun (cost : CM.t) ->
        let s, tel =
          T_mpfr.run ~telemetry:true ~config:(cfg ~cost ()) lorenz
        in
        let total = Fpvm.Stats.total_fpvm_cycles s in
        let p =
          match tel with
          | Some { Telemetry.profile = Some p; _ } -> p
          | _ -> assert false
        in
        printf "\nhot sites, lorenz / mpfr-200 / %s:\n" cost.CM.name;
        let bb = Buffer.create 1024 in
        Telemetry.Profile.report_text ~n:5 p s bb;
        print_string (Buffer.contents bb);
        let sites =
          List.map
            (fun (i, site) ->
              let c = Telemetry.Profile.site_cycles site in
              Printf.sprintf
                "        {\"site\":%d,\"cycles\":%d,\"pct\":%.2f,\"traps\":%d,\"emulations\":%d}"
                i c
                (100.0 *. float_of_int c /. float_of_int (max 1 total))
                site.Telemetry.Profile.traps
                site.Telemetry.Profile.emulations)
            (Telemetry.Profile.top p 5)
        in
        Printf.sprintf
          "    { \"cost_model\": \"%s\", \"total_fpvm_cycles\": %d, \"sites\": [\n%s\n      ] }"
          (json_escape cost.CM.name) total
          (String.concat ",\n" sites))
      CM.profiles
  in
  let doc =
    Printf.sprintf
      "{\n\
       \  \"schema_version\": 1,\n\
       \  \"experiment\": \"telemetry: ring-buffer event tracing + per-site \
       hot-spot profiles + shadow numerical-quality check\",\n\
       \  \"workload\": \"lorenz\",\n\
       \  \"scale\": \"test\",\n\
       \  \"fingerprint_identity\": [\n%s\n  ],\n\
       \  \"profile_reconciliation\": [\n%s\n  ],\n\
       \  \"shadow_check\": { \"vanilla_max_rel_err\": %.6e, \
       \"mpfr_prec8_max_rel_err\": %.6e },\n\
       \  \"trace\": %s,\n\
       \  \"hot_sites\": [\n%s\n  ]\n\
       }\n"
      (String.concat ",\n" fp_rows)
      (String.concat ",\n" rec_rows)
      err_vanilla err_mpfr8 trace_stats
      (String.concat ",\n" hot_rows)
  in
  let oc = open_out "BENCH_telemetry.json" in
  output_string oc doc;
  close_out oc;
  printf "\nwrote BENCH_telemetry.json\n";
  if !failures > 0 then begin
    printf "telemetry experiment: %d assertion(s) FAILED\n" !failures;
    exit 1
  end

(* ---- BENCH_jit.json: trace JIT superblocks ------------------------------- *)

(* Evidence for the trace JIT: per-iteration window cost (interpretive
   trace stepping + per-visit bind/dispatch + compiled stepping) drops
   at least 2x at steady state against the plans-only engine on at
   least 3 workloads, and the program-visible results stay
   bit-identical on every arithmetic port and both GC modes.

   Steady state is measured as the marginal cost of doubling the
   iteration count: cost(2N) - cost(N) cancels the shared warmup
   (compiles, cold plan misses, recording windows), leaving N
   iterations of hot-loop execution only. *)

let bench_jit () =
  hr "BENCH_jit.json: guarded IR superblocks with trace linking";
  let failures = ref 0 in
  let window_cost (s : Fpvm.Stats.t) =
    s.Fpvm.Stats.cyc_trace + s.Fpvm.Stats.cyc_bind
    + s.Fpvm.Stats.cyc_emu_dispatch + s.Fpvm.Stats.cyc_jit
  in
  let jcfg ?(use_jit = true) () = cfg ~use_jit ~jit_threshold:2 () in
  (* (name, iterations N, program at k*N iterations) *)
  let subjects =
    [ ("lorenz", 400,
       fun k -> W.Lorenz.program ~steps:(k * 400) ());
      ("three-body", 200,
       fun k -> W.Three_body.program ~steps:(k * 200) ());
      ("NAS CG", 4,
       fun k -> W.Nas_cg.program ~n:10 ~cg_iters:(k * 4) ());
      ("fbench", 20,
       fun k -> W.Fbench.program ~iterations:(k * 20) ()) ]
  in
  printf "%-12s %14s %14s %9s %28s\n" "workload" "per-iter off"
    "per-iter jit" "ratio" "compiles/hits/links/exits";
  let passed = ref 0 in
  let rows =
    List.map
      (fun (name, iters, prog) ->
        let marginal use_jit =
          let s1 =
            (E_mpfr.run ~config:(jcfg ~use_jit ()) (prog 1)).Fpvm.Engine.stats
          and s2 =
            (E_mpfr.run ~config:(jcfg ~use_jit ()) (prog 2)).Fpvm.Engine.stats
          in
          (window_cost s2 - window_cost s1, s2)
        in
        let moff, _ = marginal false and mon, son = marginal true in
        let per_off = float_of_int moff /. float_of_int iters
        and per_on = float_of_int mon /. float_of_int iters in
        let ratio = per_off /. Float.max 1.0 per_on in
        if ratio >= 2.0 then incr passed;
        if son.Fpvm.Stats.jit_hits = 0 then begin
          incr failures;
          printf "FAIL %s: jit never hit a compiled block\n" name
        end;
        printf "%-12s %13.1fc %13.1fc %8.2fx %13d/%d/%d/%d\n%!" name per_off
          per_on ratio son.Fpvm.Stats.jit_compiles son.Fpvm.Stats.jit_hits
          son.Fpvm.Stats.jit_links son.Fpvm.Stats.jit_guard_exits;
        Printf.sprintf
          "    { \"workload\": \"%s\", \"iterations\": %d,\n\
           \      \"steady_state_window_cycles_per_iter\": { \"plans_only\": \
           %.3f, \"jit\": %.3f, \"reduction\": %.3f },\n\
           \      \"jit\": { \"compiles\": %d, \"hits\": %d, \"links\": %d, \
           \"guard_exits\": %d, \"invalidations\": %d, \"cyc_jit\": %d } }"
          (json_escape name) iters per_off per_on ratio
          son.Fpvm.Stats.jit_compiles son.Fpvm.Stats.jit_hits
          son.Fpvm.Stats.jit_links son.Fpvm.Stats.jit_guard_exits
          son.Fpvm.Stats.jit_invalidations son.Fpvm.Stats.cyc_jit)
      subjects
  in
  if !passed < 3 then begin
    incr failures;
    printf "FAIL: only %d workload(s) reached the 2x ratchet (need 3)\n"
      !passed
  end;
  (* bit-identical outputs, jit on vs off: all five arithmetic ports,
     both GC modes, every registered workload *)
  printf "\ndifferential (jit on == off), 5 ports x 2 GC modes:\n";
  let ports :
      (string * (Fpvm.Engine.config -> Machine.Program.t -> string * string))
      list =
    [ ("vanilla",
       fun c p ->
         let r = E_vanilla.run ~config:c p in
         (r.Fpvm.Engine.output, r.Fpvm.Engine.serialized));
      ("mpfr",
       fun c p ->
         let r = E_mpfr.run ~config:c p in
         (r.Fpvm.Engine.output, r.Fpvm.Engine.serialized));
      ("posit",
       fun c p ->
         let r = E_posit.run ~config:c p in
         (r.Fpvm.Engine.output, r.Fpvm.Engine.serialized));
      ("interval",
       fun c p ->
         let r = E_interval.run ~config:c p in
         (r.Fpvm.Engine.output, r.Fpvm.Engine.serialized));
      ("slash",
       fun c p ->
         let r = E_slash.run ~config:c p in
         (r.Fpvm.Engine.output, r.Fpvm.Engine.serialized)) ]
  in
  let differential_ok = ref true in
  List.iter
    (fun (e : W.entry) ->
      let prog = e.W.program W.Test in
      List.iter
        (fun (pname, run) ->
          List.iter
            (fun inc ->
              let on =
                run (cfg ~incremental_gc:inc ~use_jit:true ~jit_threshold:2 ())
                  prog
              in
              let off = run (cfg ~incremental_gc:inc ~use_jit:false ()) prog in
              if on <> off then begin
                differential_ok := false;
                incr failures;
                printf "FAIL %s/%s/gc=%s: outputs differ jit on vs off\n"
                  e.W.name pname
                  (if inc then "incremental" else "full")
              end)
            [ true; false ])
        ports)
    W.all;
  printf "  all bit-identical: %b\n" !differential_ok;
  let doc =
    Printf.sprintf
      "{\n\
       \  \"schema_version\": 1,\n\
       \  \"experiment\": \"trace JIT: hot traces compiled into guarded IR \
       superblocks with trace linking\",\n\
       \  \"arithmetic\": \"mpfr-200\",\n\
       \  \"scale\": \"test\",\n\
       \  \"baseline\": \"plans-only interpreter (use_jit=false)\",\n\
       \  \"jit_threshold\": 2,\n\
       \  \"max_trace_len\": 64,\n\
       \  \"method\": \"steady state = (cost(2N) - cost(N)) / N; window cost \
       = cyc_trace + cyc_bind + cyc_emu_dispatch + cyc_jit\",\n\
       \  \"ratchet\": { \"window_cycle_reduction_min\": 2.0, \
       \"min_workloads\": 3 },\n\
       \  \"workloads\": [\n%s\n  ],\n\
       \  \"workloads_at_2x\": %d,\n\
       \  \"differential_bit_identical\": %b\n\
       }\n"
      (String.concat ",\n" rows)
      !passed !differential_ok
  in
  let oc = open_out "BENCH_jit.json" in
  output_string oc doc;
  close_out oc;
  printf "\nwrote BENCH_jit.json\n";
  if !failures > 0 then begin
    printf "jit experiment: %d assertion(s) FAILED\n" !failures;
    exit 1
  end

(* ---- fleet serving: domain scaling + per-guest bit-identity ---------------------------------------- *)

(* The fpvm_serve perf story. Two fleets:

   Scaling: 4x lorenz-mpfr + 4x "NAS CG"-mpfr guests served at 1, 2
   and 4 domains, the 2/4-domain partitions weighted by the per-guest
   cycles measured in the 1-domain run (the LPT profiling pass).
   Throughput is modeled-cycle makespan (worst domain's guest cycles +
   switch charges); ratchet: >= 3.0x at 4 domains vs 1.

   Identity: 5 arithmetic ports x 2 GC modes on lorenz, served at 2
   domains, every guest's stats fingerprint and output compared
   bit-for-bit against Fleet.run_solo (== fpvm_run solo). *)

let bench_fleet () =
  hr "BENCH_fleet.json: fleet serving across domains";
  let failures = ref 0 in
  let mpfr_guest i workload =
    { Fleet.g_id = i; g_workload = workload; g_scale = W.Test;
      g_port = Fleet.Port.Mpfr 200;
      g_config = Fpvm.Engine.default_config }
  in
  let scaling_guests =
    List.init 8 (fun i ->
        mpfr_guest i (if i < 4 then "lorenz" else "NAS CG"))
  in
  let batch = 8 in
  let f1 = Fleet.serve ~domains:1 ~batch scaling_guests in
  let weights =
    Array.of_list (List.map (fun r -> r.Fleet.r_cycles) f1.Fleet.f_results)
  in
  let runs =
    (1, f1)
    :: List.map
         (fun d -> (d, Fleet.serve ~domains:d ~batch ~weights scaling_guests))
         [ 2; 4 ]
  in
  printf "scaling fleet: 4x lorenz-mpfr + 4x NAS-CG-mpfr, batch %d\n" batch;
  printf "%8s %16s %10s %10s\n" "domains" "makespan" "scaling" "switches";
  let scaling_rows =
    List.map
      (fun (d, (f : Fleet.fleet_result)) ->
        let scaling =
          float_of_int f1.Fleet.f_makespan /. float_of_int f.Fleet.f_makespan
        in
        printf "%8d %15dc %9.2fx %10d\n%!" d f.Fleet.f_makespan scaling
          f.Fleet.f_switches;
        (* fleet results must not depend on how many domains served them *)
        List.iter2
          (fun (a : Fleet.guest_result) (b : Fleet.guest_result) ->
            if a.Fleet.r_fingerprint <> b.Fleet.r_fingerprint then begin
              incr failures;
              printf "FAIL guest %d: fingerprint differs at %d domains\n"
                a.Fleet.r_guest.Fleet.g_id d
            end)
          f1.Fleet.f_results f.Fleet.f_results;
        Printf.sprintf
          "    { \"domains\": %d, \"makespan\": %d, \"scaling\": %.3f, \
           \"switches\": %d, \"facts_hits\": %d, \"facts_misses\": %d }"
          d f.Fleet.f_makespan scaling f.Fleet.f_switches f.Fleet.f_facts_hits
          f.Fleet.f_facts_misses)
      runs
  in
  let scaling4 =
    match List.assoc_opt 4 runs with
    | Some f -> float_of_int f1.Fleet.f_makespan /. float_of_int f.Fleet.f_makespan
    | None -> 0.0
  in
  if scaling4 < 3.0 then begin
    incr failures;
    printf "FAIL: %.2fx at 4 domains (ratchet 3.0x)\n" scaling4
  end;
  (* identity fleet: every port, both GC modes, vs solo *)
  let ports =
    [ Fleet.Port.Vanilla; Fleet.Port.Mpfr 200; Fleet.Port.Posit 32;
      Fleet.Port.Interval; Fleet.Port.Slash 64 ]
  in
  let identity_guests =
    List.concat_map
      (fun port ->
        List.map
          (fun inc ->
            (port, inc,
             { Fpvm.Engine.default_config with
               Fpvm.Engine.incremental_gc = inc }))
          [ true; false ])
      ports
    |> List.mapi (fun i (port, _inc, config) ->
           { Fleet.g_id = i; g_workload = "lorenz"; g_scale = W.Test;
             g_port = port; g_config = config })
  in
  let fid = Fleet.serve ~domains:2 ~batch:4 identity_guests in
  printf
    "\nidentity fleet: 5 ports x 2 GC modes on lorenz, 2 domains (%d guests)\n"
    (List.length fid.Fleet.f_results);
  let identical = ref 0 in
  let identity_rows =
    List.map
      (fun (r : Fleet.guest_result) ->
        let solo = Fleet.run_solo r.Fleet.r_guest in
        let ok =
          Fpvm.Stats.fingerprint solo.Fpvm.Engine.stats = r.Fleet.r_fingerprint
          && solo.Fpvm.Engine.output = r.Fleet.r_output
          && solo.Fpvm.Engine.serialized = r.Fleet.r_serialized
        in
        if ok then incr identical
        else begin
          incr failures;
          printf "FAIL guest %d (%s, gc=%s): fleet != solo\n"
            r.Fleet.r_guest.Fleet.g_id
            (Fleet.guest_arith r.Fleet.r_guest)
            (if r.Fleet.r_guest.Fleet.g_config.Fpvm.Engine.incremental_gc then
               "inc"
             else "full")
        end;
        Printf.sprintf
          "    { \"arith\": \"%s\", \"gc\": \"%s\", \"domain\": %d, \
           \"cycles\": %d, \"bit_identical_to_solo\": %b }"
          (json_escape (Fleet.guest_arith r.Fleet.r_guest))
          (if r.Fleet.r_guest.Fleet.g_config.Fpvm.Engine.incremental_gc then
             "inc"
           else "full")
          r.Fleet.r_domain r.Fleet.r_cycles ok)
      fid.Fleet.f_results
  in
  printf "  %d/%d guests bit-identical to their solo runs\n" !identical
    (List.length fid.Fleet.f_results);
  printf "  facts store: %d shared / %d computed\n" fid.Fleet.f_facts_hits
    fid.Fleet.f_facts_misses;
  let doc =
    Printf.sprintf
      "{\n\
       \  \"schema_version\": 1,\n\
       \  \"experiment\": \"fleet serving: guest fleets co-scheduled across \
       OCaml domains with a shared VSA fact store and batched trap \
       delivery\",\n\
       \  \"metric\": \"modeled-cycle makespan: max over domains of (guest \
       cycles + switches * switch_cost)\",\n\
       \  \"switch_cost\": %d,\n\
       \  \"batch\": %d,\n\
       \  \"scaling_fleet\": \"4x lorenz mpfr-200 + 4x NAS CG mpfr-200, LPT \
       weighted by measured 1-domain cycles\",\n\
       \  \"ratchet\": { \"scaling_at_4_domains_min\": 3.0 },\n\
       \  \"scaling\": [\n%s\n  ],\n\
       \  \"scaling_at_4_domains\": %.3f,\n\
       \  \"identity_fleet\": \"5 ports x 2 GC modes on lorenz at 2 \
       domains\",\n\
       \  \"identity\": [\n%s\n  ],\n\
       \  \"identity_bit_identical\": %d,\n\
       \  \"identity_guests\": %d,\n\
       \  \"failures\": %d\n\
       }\n"
      Fleet.default_switch_cost batch
      (String.concat ",\n" scaling_rows)
      scaling4
      (String.concat ",\n" identity_rows)
      !identical
      (List.length fid.Fleet.f_results)
      !failures
  in
  let oc = open_out "BENCH_fleet.json" in
  output_string oc doc;
  close_out oc;
  printf "\nwrote BENCH_fleet.json\n";
  if !failures > 0 then begin
    printf "fleet experiment: %d assertion(s) FAILED\n" !failures;
    exit 1
  end

(* ---- BENCH_fpa.json: FP special-value analysis --------------------------- *)

(* Evidence for the FP special-value tier.  Three claims:

   Static precision: per-workload fractions of FP sites proven
   subnormal-free / NaN-Inf-birth-free (the lint / analyze numbers).

   Consumption: with the tier on, at least one workload executes a
   strictly positive share of its fused JIT steps *unguarded* (the
   runtime subnormal scan discharged statically — with the tier off
   that share is 0 by construction), and at least one workload elides
   a strictly positive number of shadow numerical checks; outputs stay
   bit-identical with the tier on or off.

   Soundness: the observation oracle — dynamic NaN/Inf birth or
   subnormal raw input at a statically-proven-clean site — fires zero
   times across every workload x 5 arithmetic ports x both GC modes. *)

let bench_fpa () =
  hr "BENCH_fpa.json: static FP special-value analysis";
  let failures = ref 0 in
  (* static precision table *)
  printf "%-12s %7s %9s %10s %7s\n" "workload" "sites" "sub-free" "born-free"
    "proven";
  let static_rows =
    List.map
      (fun (e : W.entry) ->
        let f = Analysis.Fpa.analyze (e.W.program W.Test) in
        let frac a b = if b = 0 then 1.0 else float_of_int a /. float_of_int b in
        printf "%-12s %7d %8.0f%% %9.0f%% %6.0f%%\n" e.W.name f.Analysis.Fpa.sites
          (100. *. frac f.Analysis.Fpa.sub_free f.Analysis.Fpa.sites)
          (100. *. frac f.Analysis.Fpa.born_free f.Analysis.Fpa.sites)
          (100. *. frac f.Analysis.Fpa.proven f.Analysis.Fpa.sites);
        Printf.sprintf
          "    { \"workload\": \"%s\", \"sites\": %d, \"sub_free\": %d, \
           \"born_free\": %d, \"proven\": %d }"
          (json_escape e.W.name) f.Analysis.Fpa.sites f.Analysis.Fpa.sub_free
          f.Analysis.Fpa.born_free f.Analysis.Fpa.proven)
      W.all
  in
  (* consumer gauges + differential, per workload on the mpfr port
     (the jit bench's arithmetic), jit_threshold 2 so Test-scale
     workloads get hot *)
  let driver_of arith =
    match Fleet.Port.of_flags ~arith ~prec:200 ~posit:32 with
    | Ok p -> Fleet.port_driver p
    | Error m -> failwith m
  in
  let instrumented_run d ~oracle ~use_fpa ?(incremental_gc = true)
      (prog : Machine.Program.t) =
    let a = Fpvm.Vsa.analyze prog in
    let born =
      Analysis.Fpa.born_free_array a.Fpvm.Vsa.fpa
        (Array.length prog.Machine.Program.insns)
    in
    let tel =
      Telemetry.create ~numprof:true
        ~clean:(fun i -> i >= 0 && i < Array.length born && born.(i))
        ()
    in
    let r =
      d.Fleet.d_run ~facts:a
        ~instrument:(fun sink -> Telemetry.attach tel sink)
        ~config:(cfg ~jit_threshold:2 ~use_fpa ~oracle ~incremental_gc ())
        prog
    in
    Telemetry.finalize tel r.Fpvm.Engine.stats;
    r
  in
  printf "\nconsumption (mpfr-200, jit_threshold 2):\n";
  printf "%-12s %11s %14s %15s %13s\n" "workload" "fused" "unguarded"
    "unguarded-share" "shadow-elided";
  let mpfr = driver_of "mpfr" in
  let best_share = ref 0.0 and best_elided = ref 0 and diff_ok = ref true in
  let consume_rows =
    List.map
      (fun (e : W.entry) ->
        let prog = e.W.program W.Test in
        let on = instrumented_run mpfr ~oracle:false ~use_fpa:true prog in
        let off = instrumented_run mpfr ~oracle:false ~use_fpa:false prog in
        if
          on.Fpvm.Engine.output <> off.Fpvm.Engine.output
          || on.Fpvm.Engine.serialized <> off.Fpvm.Engine.serialized
        then begin
          incr failures;
          diff_ok := false;
          printf "FAIL %s: outputs differ with fpa on vs off\n" e.W.name
        end;
        let s = on.Fpvm.Engine.stats in
        let share =
          if s.Fpvm.Stats.jit_fused_steps = 0 then 0.0
          else
            float_of_int s.Fpvm.Stats.fused_unguarded
            /. float_of_int s.Fpvm.Stats.jit_fused_steps
        in
        if share > !best_share then best_share := share;
        if s.Fpvm.Stats.shadow_elided > !best_elided then
          best_elided := s.Fpvm.Stats.shadow_elided;
        printf "%-12s %11d %14d %14.1f%% %13d\n" e.W.name
          s.Fpvm.Stats.jit_fused_steps s.Fpvm.Stats.fused_unguarded
          (100. *. share) s.Fpvm.Stats.shadow_elided;
        Printf.sprintf
          "    { \"workload\": \"%s\", \"fused_steps\": %d, \
           \"fused_unguarded\": %d, \"unguarded_share\": %.4f, \
           \"shadow_checks_elided\": %d, \"fpa_sites_proven\": %d }"
          (json_escape e.W.name) s.Fpvm.Stats.jit_fused_steps
          s.Fpvm.Stats.fused_unguarded share s.Fpvm.Stats.shadow_elided
          s.Fpvm.Stats.fpa_sites_proven)
      W.all
  in
  if !best_share <= 0.0 then begin
    incr failures;
    printf
      "FAIL: no workload fused a strictly positive unguarded share (fpa-off \
       baseline is 0)\n"
  end;
  if !best_elided <= 0 then begin
    incr failures;
    printf "FAIL: no workload elided any shadow checks\n"
  end;
  (* soundness oracle matrix: every workload x 5 ports x 2 GC modes *)
  printf "\nsoundness oracle, 5 ports x 2 GC modes: %!";
  let violations = ref 0 and runs = ref 0 in
  List.iter
    (fun (e : W.entry) ->
      let prog = e.W.program W.Test in
      List.iter
        (fun arith ->
          let d = driver_of arith in
          List.iter
            (fun incremental_gc ->
              incr runs;
              let r =
                instrumented_run d ~oracle:true ~use_fpa:true ~incremental_gc
                  prog
              in
              let s = r.Fpvm.Engine.stats in
              if
                s.Fpvm.Stats.fpa_sub_violations > 0
                || s.Fpvm.Stats.fpa_nan_violations > 0
              then begin
                incr violations;
                incr failures;
                printf "\nFAIL %s/%s/gc=%s: %d sub / %d nan-inf violations"
                  e.W.name arith
                  (if incremental_gc then "incremental" else "full")
                  s.Fpvm.Stats.fpa_sub_violations
                  s.Fpvm.Stats.fpa_nan_violations
              end)
            [ true; false ])
        [ "vanilla"; "mpfr"; "posit"; "interval"; "slash" ])
    W.all;
  printf "%d runs, %d violations\n" !runs !violations;
  let doc =
    Printf.sprintf
      "{\n\
       \  \"schema_version\": 1,\n\
       \  \"experiment\": \"static FP special-value analysis: prove \
       NaN/Inf/subnormal freedom per site, discharge the JIT's runtime \
       subnormal guard, elide shadow numerical checks\",\n\
       \  \"arithmetic\": \"mpfr-200\",\n\
       \  \"scale\": \"test\",\n\
       \  \"baseline\": \"fpa tier disabled (use_fpa=false): every fused \
       step carries the runtime subnormal scan, no shadow checks elided\",\n\
       \  \"static_precision\": [\n%s\n  ],\n\
       \  \"consumption\": [\n%s\n  ],\n\
       \  \"max_unguarded_share\": %.4f,\n\
       \  \"max_shadow_checks_elided\": %d,\n\
       \  \"differential_bit_identical\": %b,\n\
       \  \"oracle\": { \"runs\": %d, \"violations\": %d }\n\
       }\n"
      (String.concat ",\n" static_rows)
      (String.concat ",\n" consume_rows)
      !best_share !best_elided !diff_ok !runs !violations
  in
  let oc = open_out "BENCH_fpa.json" in
  output_string oc doc;
  close_out oc;
  printf "\nwrote BENCH_fpa.json\n";
  if !failures > 0 then begin
    printf "fpa experiment: %d assertion(s) FAILED\n" !failures;
    exit 1
  end

(* ---- main ------------------------------------------------------------------------------------------ *)

(* ---- BENCH_cache.json: persistent compilation-artifact cache ------------- *)

(* The warm-start perf story (DESIGN.md 4j). A cold session pays every
   jit compile on-guest (cyc_jit); a warm session loads the previous
   session's artifact store from disk and claims every block as
   [`Shared], moving the charge into the fingerprint-excluded
   cyc_compile_shared bucket. Ratchets:
   - warm eliminates >= 95% of cold cyc_jit on >= 3 workloads;
   - an 8-duplicate-guest fleet publishes (charges) each superblock
     exactly once — the other 7 guests share;
   - warm == cold bit-identity (output, serialized state, 42-field
     fingerprint) on all five arithmetic ports and both GC modes. *)

let bench_cache () =
  hr "BENCH_cache.json: persistent compilation-artifact cache";
  let failures = ref 0 in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fpvm-bench-cache-%d" (Unix.getpid ()))
  in
  let port flags =
    match flags with
    | arith -> (
        match Fleet.Port.of_flags ~arith ~prec:200 ~posit:32 with
        | Ok p -> p
        | Error m -> failwith m)
  in
  let ccfg ?(incremental_gc = true) () =
    cfg ~incremental_gc ~jit_threshold:2 ()
  in
  let warm_cold ?(pname = "mpfr") ~config prog =
    let d = Fleet.port_driver (port pname) in
    let key = d.Fleet.d_session_key ~config prog in
    let cold_store = Fpvm.Artifact.create () in
    let cold = d.Fleet.d_run ~artifacts:cold_store ~config prog in
    if not (Fpvm.Artifact.save cold_store ~dir ~key) then
      failwith "artifact save failed";
    let warm_store = Fpvm.Artifact.create () in
    if not (Fpvm.Artifact.load warm_store ~dir ~key) then
      failwith "artifact load failed";
    let warm = d.Fleet.d_run ~artifacts:warm_store ~config prog in
    (cold, warm)
  in
  (* 1. warm vs cold over the startup window: each workload scaled so
     its hot heads have just crossed the compile threshold (few or no
     jit hits yet), which is exactly the window a warm start targets —
     there, cold cyc_jit is dominated by compile charges, and the warm
     session's claims eliminate them. three-body and NAS CG compile
     blocks that start hitting almost immediately, so their floors are
     lower; they are reported as honest non-passing rows. *)
  let subjects =
    [ ("lorenz", fun () -> W.Lorenz.program ~steps:7 ());
      ("three-body", fun () -> W.Three_body.program ~steps:2 ());
      ("NAS CG", fun () -> W.Nas_cg.program ~n:4 ~cg_iters:1 ());
      ("fbench", fun () -> W.Fbench.program ~iterations:2 ());
      ("Enzo(astro)", fun () -> W.Astro.program ~n:4 ~steps:2 ()) ]
  in
  printf "%-12s %12s %12s %12s %14s %10s\n" "workload" "cold cyc_jit"
    "warm cyc_jit" "eliminated" "cycles saved" "compiles";
  let passed = ref 0 in
  let rows =
    List.map
      (fun (name, mk) ->
        let prog = mk () in
        let cold, warm = warm_cold ~config:(ccfg ()) prog in
        let sc = cold.Fpvm.Engine.stats and sw = warm.Fpvm.Engine.stats in
        let elim =
          if sc.Fpvm.Stats.cyc_jit = 0 then 100.0
          else
            100.0
            *. (1.0
               -. float_of_int sw.Fpvm.Stats.cyc_jit
                  /. float_of_int sc.Fpvm.Stats.cyc_jit)
        in
        let saved = cold.Fpvm.Engine.cycles - warm.Fpvm.Engine.cycles in
        if elim >= 95.0 then incr passed;
        if
          Fpvm.Stats.fingerprint sc <> Fpvm.Stats.fingerprint sw
          || cold.Fpvm.Engine.output <> warm.Fpvm.Engine.output
        then begin
          incr failures;
          printf "FAIL %s: warm run not bit-identical to cold\n" name
        end;
        if saved <> sw.Fpvm.Stats.cyc_compile_shared then begin
          incr failures;
          printf "FAIL %s: conservation broken (saved %d, bucket %d)\n" name
            saved sw.Fpvm.Stats.cyc_compile_shared
        end;
        printf "%-12s %12d %12d %11.1f%% %14d %10d\n%!" name
          sc.Fpvm.Stats.cyc_jit sw.Fpvm.Stats.cyc_jit elim saved
          sc.Fpvm.Stats.jit_compiles;
        Printf.sprintf
          "    { \"workload\": \"%s\",\n\
           \      \"cold\": { \"cyc_jit\": %d, \"jit_compiles\": %d, \
           \"cycles\": %d },\n\
           \      \"warm\": { \"cyc_jit\": %d, \"blocks_shared\": %d, \
           \"cyc_compile_shared\": %d, \"cycles\": %d },\n\
           \      \"cyc_jit_eliminated_pct\": %.2f }"
          (json_escape name) sc.Fpvm.Stats.cyc_jit sc.Fpvm.Stats.jit_compiles
          cold.Fpvm.Engine.cycles sw.Fpvm.Stats.cyc_jit
          sw.Fpvm.Stats.blocks_shared sw.Fpvm.Stats.cyc_compile_shared
          warm.Fpvm.Engine.cycles elim)
      subjects
  in
  if !passed < 3 then begin
    incr failures;
    printf "FAIL: only %d workload(s) reached 95%% elimination (need 3)\n"
      !passed
  end;
  (* 2. fleet-wide dedup: 8 identical guests, each block compiled once *)
  let g =
    { Fleet.g_id = 0; g_workload = "lorenz"; g_scale = W.Test;
      g_port = port "vanilla"; g_config = ccfg () }
  in
  let guests = List.init 8 (fun i -> { g with Fleet.g_id = i }) in
  let f = Fleet.serve ~domains:2 guests in
  let solo = Fleet.run_solo g in
  let compiles = solo.Fpvm.Engine.stats.Fpvm.Stats.jit_compiles in
  let claims = f.Fleet.f_blocks_published + f.Fleet.f_blocks_shared in
  let dedup =
    float_of_int claims /. float_of_int (max 1 f.Fleet.f_blocks_published)
  in
  printf
    "\n\
     fleet (8 duplicate lorenz guests): %d blocks published once, %d shared \
     (%.1fx dedup), %d compile cycles off-guest\n"
    f.Fleet.f_blocks_published f.Fleet.f_blocks_shared dedup
    f.Fleet.f_cyc_compile_shared;
  if f.Fleet.f_blocks_published <> compiles then begin
    incr failures;
    printf "FAIL: fleet published %d blocks, solo compiles %d\n"
      f.Fleet.f_blocks_published compiles
  end;
  if f.Fleet.f_blocks_shared <> 7 * compiles then begin
    incr failures;
    printf "FAIL: fleet shared %d blocks, expected %d\n" f.Fleet.f_blocks_shared
      (7 * compiles)
  end;
  (* 3. warm == cold identity: 5 ports x 2 GC modes *)
  printf "\nwarm == cold bit-identity, 5 ports x 2 GC modes:\n";
  let identity_ok = ref 0 in
  List.iter
    (fun pname ->
      List.iter
        (fun inc ->
          let prog = (get "lorenz").W.program W.Test in
          let cold, warm =
            warm_cold ~pname ~config:(ccfg ~incremental_gc:inc ()) prog
          in
          if
            cold.Fpvm.Engine.output = warm.Fpvm.Engine.output
            && cold.Fpvm.Engine.serialized = warm.Fpvm.Engine.serialized
            && Fpvm.Stats.fingerprint cold.Fpvm.Engine.stats
               = Fpvm.Stats.fingerprint warm.Fpvm.Engine.stats
          then incr identity_ok
          else begin
            incr failures;
            printf "FAIL %s/gc=%s: warm differs from cold\n" pname
              (if inc then "incremental" else "full")
          end)
        [ true; false ])
    [ "vanilla"; "mpfr"; "posit"; "interval"; "slash" ];
  printf "  identical: %d/10\n" !identity_ok;
  (* drop the on-disk stores the bench created *)
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end;
  let doc =
    Printf.sprintf
      "{\n\
       \  \"schema_version\": 1,\n\
       \  \"experiment\": \"persistent compilation-artifact cache: warm-start \
       compile elimination, fleet-wide code sharing, off-guest compile \
       accounting\",\n\
       \  \"arithmetic\": \"mpfr-200\",\n\
       \  \"scale\": \"startup window (hot heads just past the compile \
       threshold)\",\n\
       \  \"jit_threshold\": 2,\n\
       \  \"method\": \"cold run populates the store and pays cyc_jit \
       on-guest; warm run loads it from disk and claims every block as \
       shared, moving the charge to cyc_compile_shared; measured over the \
       startup window, where compile charges dominate cyc_jit\",\n\
       \  \"ratchet\": { \"cyc_jit_elimination_min_pct\": 95.0, \
       \"min_workloads\": 3, \"fleet_publishes_each_block_once\": true, \
       \"identity_runs\": 10 },\n\
       \  \"workloads\": [\n%s\n  ],\n\
       \  \"workloads_at_95pct\": %d,\n\
       \  \"fleet\": { \"guests\": 8, \"blocks_published\": %d, \
       \"blocks_shared\": %d, \"dedup_ratio\": %.2f, \
       \"cyc_compile_shared\": %d },\n\
       \  \"identity_runs_ok\": %d\n\
       }\n"
      (String.concat ",\n" rows)
      !passed f.Fleet.f_blocks_published f.Fleet.f_blocks_shared dedup
      f.Fleet.f_cyc_compile_shared !identity_ok
  in
  let oc = open_out "BENCH_cache.json" in
  output_string oc doc;
  close_out oc;
  printf "\nwrote BENCH_cache.json\n";
  if !failures > 0 then begin
    printf "cache experiment: %d assertion(s) FAILED\n" !failures;
    exit 1
  end

(* ---- BENCH_flows.json: FP-exception flight recorder ---------------------- *)

(* Evidence for the flight recorder: attaching it charges zero modeled
   cycles and leaves the deterministic fingerprint bit-identical on
   every arithmetic port and both GC modes, and on >= 3 workloads with
   an injected NaN it recovers the birth->prop->kill chain (birth
   site, kill site, replay birth-event index) and the interval ground
   truth labels the injected 0/0 real. Writes BENCH_flows.json. *)
let bench_flows () =
  hr "BENCH_flows.json: flight-recorder overhead + chain recovery";
  let failures = ref 0 in
  let check name ok =
    printf "%-64s %s\n%!" name (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  let module FR = Telemetry.Flowrec in
  let ports =
    [ ("vanilla", Fleet.Port.Vanilla);
      ("mpfr-50", Fleet.Port.Mpfr 50);
      ("posit-32", Fleet.Port.Posit 32);
      ("interval", Fleet.Port.Interval);
      ("slash-30", Fleet.Port.Slash 30) ]
  in
  let lorenz = (get "lorenz").W.program W.Test in
  (* 1. Zero overhead: modeled cycles and fingerprint identical with
     the recorder on vs off, every port x both GC modes. *)
  let overhead_rows =
    List.concat_map
      (fun (pname, port) ->
        let d = Fleet.port_driver port in
        List.map
          (fun inc ->
            let config = cfg ~incremental_gc:inc () in
            let off = d.Fleet.d_run ~config lorenz in
            let tel = Telemetry.create ~flows:true () in
            let on =
              d.Fleet.d_run
                ~instrument:(fun sink -> Telemetry.attach tel sink)
                ~config lorenz
            in
            let same_cyc = on.Fpvm.Engine.cycles = off.Fpvm.Engine.cycles in
            let same_fp =
              Fpvm.Stats.fingerprint on.Fpvm.Engine.stats
              = Fpvm.Stats.fingerprint off.Fpvm.Engine.stats
            in
            check
              (Printf.sprintf "recorder 0%% overhead  %-10s incremental_gc=%b"
                 pname inc)
              (same_cyc && same_fp);
            Printf.sprintf
              "    { \"port\": \"%s\", \"incremental_gc\": %b, \
               \"cycles_off\": %d, \"cycles_on\": %d, \"overhead_pct\": \
               %.1f, \"fingerprint_identical\": %b }"
              (json_escape pname) inc off.Fpvm.Engine.cycles
              on.Fpvm.Engine.cycles
              (100.0
              *. float_of_int (on.Fpvm.Engine.cycles - off.Fpvm.Engine.cycles)
              /. float_of_int (max 1 off.Fpvm.Engine.cycles))
              same_fp)
          [ true; false ])
      ports
  in
  (* 2. Chain recovery: inject a NaN into >= 3 workloads, recover the
     flow, and label it against the interval ground truth. *)
  let d_mpfr = Fleet.port_driver (Fleet.Port.Mpfr 50) in
  let d_iv = Fleet.port_driver Fleet.Port.Interval in
  let recover wname =
    let prog =
      Machine.Program.inject_nan ((get wname).W.program W.Test) ~nth:0
    in
    let run d =
      let tel = Telemetry.create ~flows:true ~flow_capacity:100000 () in
      let _ =
        d.Fleet.d_run
          ~instrument:(fun sink -> Telemetry.attach tel sink)
          ~config:(cfg ()) prog
      in
      match tel.Telemetry.flows with Some fr -> fr | None -> assert false
    in
    let fr = run d_mpfr in
    let real_sites = FR.birth_sites (run d_iv) in
    FR.label_truth fr (fun site -> Hashtbl.mem real_sites site);
    let flows = FR.all_flows fr in
    let injected =
      match List.find_opt (fun f -> f.FR.fl_is_nan) flows with
      | Some f -> f
      | None -> List.hd flows
    in
    check
      (Printf.sprintf "chain recovered                   %-14s" wname)
      (FR.n_flows fr >= 1 && injected.FR.fl_birth_site >= 0
      && injected.FR.fl_links >= 1);
    check
      (Printf.sprintf "injected 0/0 labeled real         %-14s" wname)
      (injected.FR.fl_real = 1);
    Printf.sprintf
      "    { \"workload\": \"%s\", \"flows\": %d, \"birth_site\": %d, \
       \"birth_event\": %d, \"kill_site\": %d, \"kill_kind\": \"%s\", \
       \"links\": %d, \"props\": %d, \"real\": %b }"
      (json_escape wname) (FR.n_flows fr) injected.FR.fl_birth_site
      injected.FR.fl_birth_event injected.FR.fl_kill_site
      (FR.kill_kind_name injected.FR.fl_kill_kind)
      injected.FR.fl_links injected.FR.fl_props
      (injected.FR.fl_real = 1)
  in
  let recovery_rows =
    List.map recover [ "lorenz"; "three-body"; "fbench" ]
  in
  let doc =
    Printf.sprintf
      "{\n\
       \  \"schema_version\": 1,\n\
       \  \"experiment\": \"FP-exception flight recorder: birth->prop->kill \
       flow chains, zero-overhead observation, interval ground truth\",\n\
       \  \"scale\": \"test\",\n\
       \  \"ratchet\": { \"overhead_pct_max\": 0.0, \"min_workloads\": 3, \
       \"fingerprint_identity_runs\": %d },\n\
       \  \"overhead\": [\n%s\n  ],\n\
       \  \"recovery\": [\n%s\n  ]\n\
       }\n"
      (List.length overhead_rows)
      (String.concat ",\n" overhead_rows)
      (String.concat ",\n" recovery_rows)
  in
  let oc = open_out "BENCH_flows.json" in
  output_string oc doc;
  close_out oc;
  printf "\nwrote BENCH_flows.json\n";
  if !failures > 0 then begin
    printf "flows experiment: %d assertion(s) FAILED\n" !failures;
    exit 1
  end

let experiments =
  [ ("fig3", fig3);
    ("patchpoc", patch_poc);
    ("fig9", fun () -> fig9 ());
    ("fig9-nocache", fun () -> fig9 ~decode_cache:false ());
    ("fig10", fig10);
    ("fig11", fun () -> fig11 ());
    ("fig12", fun () -> fig12 ());
    ("fig13", fig13);
    ("fig14", fig14);
    ("validate", validate);
    ("effects", effects);
    ("fpspy", fpspy);
    ("loc", loc);
    ("ablate-gc", ablate_gc);
    ("ablate-vsa", ablate_vsa);
    ("ablate-compiler-gc", ablate_compiler_gc);
    ("ablate-delivery", ablate_delivery);
    ("json", bench_json);
    ("replay", bench_replay);
    ("vsa", bench_vsa);
    ("plans", bench_plans);
    ("telemetry", bench_telemetry);
    ("jit", bench_jit);
    ("cache", bench_cache);
    ("fleet", bench_fleet);
    ("fpa", bench_fpa);
    ("flows", bench_flows) ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] ->
      printf "FPVM reproduction bench harness; running every experiment.\n%!";
      List.iter (fun (_, fn) -> fn ()) experiments
  | [ "list" ] -> List.iter (fun (n, _) -> printf "%s\n" n) experiments
  | names ->
      List.iter
        (fun n ->
          match List.assoc_opt n experiments with
          | Some fn -> fn ()
          | None ->
              printf "unknown experiment %s (try 'list')\n" n;
              exit 1)
        names
