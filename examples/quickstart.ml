(* Quickstart: take an existing binary and run it under FPVM with a
   different arithmetic system - no source changes, no recompilation.

     dune exec examples/quickstart.exe *)

module E_mpfr = Fpvm.Engine.Make (Fpvm.Alt_mpfr)

let () =
  (* An existing application binary (here: the Lorenz simulator). *)
  let binary = Workloads.Lorenz.program ~steps:2500 () in

  (* Run it natively: plain IEEE binary64 hardware. *)
  let native = Fpvm.Engine.run_native binary in
  print_string "--- native IEEE double ---\n";
  print_string native.Fpvm.Engine.output;

  (* Now run the *same unmodified binary* under FPVM with 200-bit
     arbitrary precision arithmetic. *)
  let virtualized = E_mpfr.run binary in
  print_string "--- same binary under FPVM + MPFR-200 ---\n";
  print_string virtualized.Fpvm.Engine.output;

  let s = virtualized.Fpvm.Engine.stats in
  Printf.printf
    "\n(%d floating point traps, %d values promoted, %d collected by GC)\n"
    s.Fpvm.Stats.fp_traps s.Fpvm.Stats.boxes_allocated s.Fpvm.Stats.gc_freed;
  print_string
    "\nThe trajectories differ because the Lorenz system is chaotic: each\n\
     rounding event is a perturbation, and 200-bit arithmetic rounds\n\
     differently than 53-bit hardware doubles (paper, section 5.4).\n"
