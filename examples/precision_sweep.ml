(* Precision sweep: run the three-body simulation under FPVM+MPFR at
   increasing precision and watch the total-energy drift shrink - the
   "one variable changed: the arithmetic" experiment the paper's Figure 1
   motivates for analysts.

     dune exec examples/precision_sweep.exe *)

(* One engine instance per precision: the mpfr port is a functor over
   the significand width, so several precisions coexist in-process. *)
let run_at prec binary =
  let module M = (val Fpvm.Alt_mpfr.make ~prec ()) in
  let module E = Fpvm.Engine.Make (M) in
  E.run binary

(* The three-body program prints six positions then the total energy. *)
let final_energy output =
  let lines = String.split_on_char '\n' (String.trim output) in
  float_of_string (List.nth lines (List.length lines - 1))

let () =
  let steps = 1200 in
  let binary = Workloads.Three_body.program ~steps ~dt:0.01 () in
  let native = Fpvm.Engine.run_native binary in
  let e_native = final_energy native.Fpvm.Engine.output in
  (* Reference energy at very high precision. *)
  let gold = final_energy (run_at 600 binary).Fpvm.Engine.output in
  Printf.printf "three-body, %d steps; final total energy per arithmetic:\n\n" steps;
  Printf.printf "%12s %22s %14s\n" "precision" "energy" "|delta vs 600b|";
  Printf.printf "%12s %22.15g %14.3e\n" "ieee-53"
    e_native
    (Float.abs (e_native -. gold));
  List.iter
    (fun prec ->
      let e = final_energy (run_at prec binary).Fpvm.Engine.output in
      Printf.printf "%12s %22.15g %14.3e\n"
        (Printf.sprintf "mpfr-%d" prec)
        e
        (Float.abs (e -. gold)))
    [ 64; 96; 128; 200; 300 ];
  print_string
    "\nHigher precision converges on the reference energy: the residual\n\
     differences below ~1e-15 are the demotion to a printable double.\n\
     (The symplectic-ish integrator drifts too - precision only removes\n\
     the rounding share of the error, exactly the separation an analyst\n\
     wants to observe.)\n"
