(* The Figure 13 study: how fast do the IEEE and MPFR trajectories of the
   Lorenz system separate? Prints the divergence over time plus a small
   ASCII rendering of |x_ieee - x_mpfr|.

     dune exec examples/lorenz_divergence.exe *)

module E_vanilla = Fpvm.Engine.Make (Fpvm.Alt_vanilla)
module E_mpfr = Fpvm.Engine.Make (Fpvm.Alt_mpfr)

let traj (s : string) =
  let raw = Bytes.of_string s in
  Array.init (Bytes.length raw / 8) (fun k ->
      Int64.float_of_bits (Bytes.get_int64_le raw (8 * k)))

let () =
  let emit_every = 64 in
  let binary = Workloads.Lorenz.program ~steps:2500 ~emit_every () in
  let native = Fpvm.Engine.run_native binary in
  let vanilla = E_vanilla.run binary in
  let mpfr = E_mpfr.run binary in
  let ti = traj native.Fpvm.Engine.serialized in
  let tv = traj vanilla.Fpvm.Engine.serialized in
  let tm = traj mpfr.Fpvm.Engine.serialized in
  Printf.printf "FPVM-Vanilla reproduces the IEEE trajectory bit-for-bit: %b\n\n"
    (ti = tv);
  Printf.printf "%8s %14s  divergence |x_ieee - x_mpfr| (log scale)\n" "step" "|delta x|";
  let n = Array.length ti / 3 in
  for k = 0 to n - 1 do
    let d = Float.abs (ti.(3 * k) -. tm.(3 * k)) in
    let logd = if d <= 0.0 then -17.0 else Float.max (-17.0) (Float.log10 d) in
    let bar = int_of_float ((logd +. 17.0) *. 2.5) in
    Printf.printf "%8d %14.3e  %s\n" (k * emit_every) d (String.make (max 0 bar) '#')
  done;
  print_string
    "\nExponential growth of the separation is the signature of chaos: each\n\
     rounding difference is amplified by ~e^(lambda * t). Once the curves\n\
     reach O(10), the two runs live on different lobes of the attractor.\n"
