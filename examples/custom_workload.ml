(* Authoring a new workload: write a numerical kernel in the DSL, compile
   it to a VX64 binary, and study it under different arithmetic systems.

   The kernel is the classic ill-conditioned summation demo: adding many
   tiny values to a large one. In IEEE doubles the tiny addends vanish;
   under FPVM+MPFR they are retained.

     dune exec examples/custom_workload.exe *)

module E_mpfr128 =
  Fpvm.Engine.Make (Fpvm.Alt_mpfr.Make (struct let prec = 128 end))
module E_posit = Fpvm.Engine.Make (Fpvm.Alt_posit)

let source : Fpvm_ir.Ast.program =
  let open Fpvm_ir.Ast in
  { name = "absorbed-sum";
    decls =
      [ Fscalar ("acc", 1e16); Fscalar ("sum_tiny", 0.0); Iscalar ("k", 0) ];
    body =
      [ (* add 100000 copies of 0.01 to 1e16 *)
        For
          ( "k", i 0, i 100_000,
            [ Fset ("acc", fv "acc" +: f 0.01);
              Fset ("sum_tiny", fv "sum_tiny" +: f 0.01) ] );
        (* acc - 1e16 should be ~1000; doubles absorbed every addend *)
        Print_f (fv "acc" -: f 1e16);
        Print_f (fv "sum_tiny") ] }

let () =
  let binary = Fpvm_ir.Codegen.compile_program source in
  Printf.printf "binary: %d instructions\n\n"
    (Array.length binary.Machine.Program.insns);
  let native = Fpvm.Engine.run_native binary in
  Printf.printf "--- native IEEE double ---\n%s" native.Fpvm.Engine.output;
  Printf.printf "(every 0.01 was absorbed: 1e16 + 0.01 rounds back to 1e16)\n\n";
  let m = E_mpfr128.run binary in
  Printf.printf "--- FPVM + MPFR-128 ---\n%s" m.Fpvm.Engine.output;
  Printf.printf "(128-bit significands retain the addends: the sum is exact)\n\n";
  let p = E_posit.run binary in
  Printf.printf "--- FPVM + posit<32,2> ---\n%s" p.Fpvm.Engine.output;
  Printf.printf
    "(32-bit posits have *less* precision than doubles near 1e16 - tapered\n\
     precision cuts both ways, which is why analysts need to test, not\n\
     assume: exactly the paper's Figure 1 workflow)\n"
